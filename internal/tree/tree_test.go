package tree

import (
	"testing"
	"testing/quick"
)

// PaperOuter builds the outer tree of paper Fig 1(b): A..G with A the root,
// children B and E; B's children C, D; E's children F, G. IDs are assigned
// in preorder, so A=0, B=1, C=2, D=3, E=4, F=5, G=6.
func PaperOuter() *Topology { return NewPerfect(2) }

func TestNewPerfectShape(t *testing.T) {
	t.Parallel()
	tr := NewPerfect(2)
	if tr.Len() != 7 {
		t.Fatalf("perfect height-2 tree has %d nodes, want 7", tr.Len())
	}
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2", tr.Height())
	}
	root := tr.Root()
	if tr.Size(root) != 7 {
		t.Fatalf("root size = %d, want 7", tr.Size(root))
	}
	for _, c := range []NodeID{tr.Left(root), tr.Right(root)} {
		if tr.Size(c) != 3 {
			t.Fatalf("child size = %d, want 3", tr.Size(c))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreorderNumberingMatchesIDsForBalanced(t *testing.T) {
	t.Parallel()
	// NewBalanced assigns IDs in preorder; Order must be the identity.
	for _, n := range []int{0, 1, 2, 3, 7, 10, 63, 100, 1023} {
		tr := NewBalanced(n)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		for id := NodeID(0); int(id) < n; id++ {
			if tr.Order(id) != int32(id) {
				t.Fatalf("n=%d: Order(%d)=%d, want %d", n, id, tr.Order(id), id)
			}
			if tr.ByPreorder(int32(id)) != id {
				t.Fatalf("n=%d: ByPreorder(%d)=%d", n, id, tr.ByPreorder(int32(id)))
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestNextIsOrderPlusSize(t *testing.T) {
	t.Parallel()
	tr := NewRandomBST(500, 42)
	for id := NodeID(0); int(id) < tr.Len(); id++ {
		if tr.Next(id) != tr.Order(id)+tr.Size(id) {
			t.Fatalf("node %d: Next=%d Order=%d Size=%d", id, tr.Next(id), tr.Order(id), tr.Size(id))
		}
	}
}

func TestChainDevolvesToList(t *testing.T) {
	t.Parallel()
	tr := NewChain(10)
	if tr.Height() != 9 {
		t.Fatalf("chain height = %d, want 9", tr.Height())
	}
	n := tr.Root()
	for k := 0; k < 10; k++ {
		if n == Nil {
			t.Fatalf("chain ended early at %d", k)
		}
		if tr.Left(n) != Nil {
			t.Fatalf("chain node %d has a left child", k)
		}
		if got := tr.Size(n); got != int32(10-k) {
			t.Fatalf("chain node %d size = %d, want %d", k, got, 10-k)
		}
		n = tr.Right(n)
	}
	if n != Nil {
		t.Fatal("chain longer than 10")
	}
}

func TestEmptyTree(t *testing.T) {
	t.Parallel()
	tr := NewBalanced(0)
	if tr.Len() != 0 || tr.Root() != Nil {
		t.Fatalf("empty tree: Len=%d Root=%d", tr.Len(), tr.Root())
	}
	if tr.Height() != -1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Preorder(nil); len(got) != 0 {
		t.Fatalf("empty preorder has %d nodes", len(got))
	}
}

func TestSizeOfNilIsZero(t *testing.T) {
	t.Parallel()
	tr := NewBalanced(3)
	if tr.Size(Nil) != 0 {
		t.Fatalf("Size(Nil) = %d", tr.Size(Nil))
	}
}

func TestPreorderVisitsAllNodesOnce(t *testing.T) {
	t.Parallel()
	tr := NewRandomBST(777, 7)
	order := tr.Preorder(nil)
	if len(order) != tr.Len() {
		t.Fatalf("preorder visits %d of %d nodes", len(order), tr.Len())
	}
	seen := make(map[NodeID]bool, len(order))
	for k, id := range order {
		if seen[id] {
			t.Fatalf("node %d visited twice", id)
		}
		seen[id] = true
		if tr.Order(id) != int32(k) {
			t.Fatalf("node %d at preorder position %d but Order=%d", id, k, tr.Order(id))
		}
	}
}

func TestAncestors(t *testing.T) {
	t.Parallel()
	tr := NewPerfect(3) // 15 nodes, preorder IDs
	root := tr.Root()
	for id := NodeID(0); int(id) < tr.Len(); id++ {
		if !tr.Ancestors(root, id) {
			t.Fatalf("root not ancestor of %d", id)
		}
		if !tr.Ancestors(id, id) {
			t.Fatalf("node %d not ancestor of itself", id)
		}
	}
	l, r := tr.Left(root), tr.Right(root)
	if tr.Ancestors(l, r) || tr.Ancestors(r, l) {
		t.Fatal("siblings report ancestry")
	}
	// Walk-up check: parent chain membership matches Ancestors.
	for id := NodeID(0); int(id) < tr.Len(); id++ {
		anc := make(map[NodeID]bool)
		for a := id; a != Nil; a = tr.Parent(a) {
			anc[a] = true
		}
		for a := NodeID(0); int(a) < tr.Len(); a++ {
			if tr.Ancestors(a, id) != anc[a] {
				t.Fatalf("Ancestors(%d,%d)=%v, parent-chain says %v", a, id, tr.Ancestors(a, id), anc[a])
			}
		}
	}
}

func TestLeavesAreHalfOfPerfectTree(t *testing.T) {
	t.Parallel()
	tr := NewPerfect(4) // 31 nodes, 16 leaves
	leaves := tr.Leaves(nil)
	if len(leaves) != 16 {
		t.Fatalf("%d leaves, want 16", len(leaves))
	}
	for _, l := range leaves {
		if !tr.IsLeaf(l) {
			t.Fatalf("node %d reported as leaf but has children", l)
		}
	}
}

func TestRandomBSTValidAcrossSeeds(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 10; seed++ {
		tr := NewRandomBST(200, seed)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.Size(tr.Root()) != 200 {
			t.Fatalf("seed %d: root size %d", seed, tr.Size(tr.Root()))
		}
	}
}

func TestBuilderRejectsUnreachableNodes(t *testing.T) {
	t.Parallel()
	b := NewBuilder(2)
	root := b.Add()
	b.Add() // orphan: never linked
	if _, err := b.Build(root); err == nil {
		t.Fatal("Build accepted a topology with an unreachable node")
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	t.Parallel()
	b := NewBuilder(2)
	a := b.Add()
	c := b.Add()
	b.SetLeft(a, c)
	b.SetLeft(c, a) // cycle; also reparents the root
	if _, err := b.Build(a); err == nil {
		t.Fatal("Build accepted a cyclic topology")
	}
}

// Property: for any n, NewBalanced(n) is valid, has n nodes, height O(log n),
// and subtree sizes sum correctly at every node.
func TestQuickBalancedInvariants(t *testing.T) {
	t.Parallel()
	f := func(raw uint16) bool {
		n := int(raw % 2048)
		tr := NewBalanced(n)
		if tr.Len() != n || tr.Validate() != nil {
			return false
		}
		if n > 0 {
			// height of a size-balanced tree is at most ceil(log2(n+1))-1... allow <= 2*log2
			h := tr.Height()
			bound := 1
			for m := 1; m < n+1; m *= 2 {
				bound++
			}
			if h > bound {
				return false
			}
		}
		for id := NodeID(0); int(id) < n; id++ {
			if tr.Size(id) != tr.Size(tr.Left(id))+tr.Size(tr.Right(id))+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Validate accepts every Builder-produced random topology.
func TestQuickRandomBSTInvariants(t *testing.T) {
	t.Parallel()
	f := func(seed int64, raw uint16) bool {
		n := int(raw%1024) + 1
		tr := NewRandomBST(n, seed)
		return tr.Len() == n && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewBalanced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewBalanced(1 << 14)
	}
}
