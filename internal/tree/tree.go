// Package tree provides the arena-allocated binary-tree substrate that all
// nested recursive iteration spaces in this repository are built on.
//
// The paper's transformations (recursion interchange and recursion twisting)
// operate on recursions whose "index spaces" are trees: each recursion walks a
// tree, and the pair of current nodes (o, i) plays the role of the loop
// indices of a doubly-nested loop. The engine in internal/nest only needs the
// tree *topology* — children, subtree sizes, and a preorder numbering — so
// this package stores exactly that, in flat slices indexed by NodeID.
//
// Arena layout (indices instead of pointers) is a deliberate substitution for
// the paper's C++ pointer-based trees: it gives the memory-hierarchy study in
// internal/memsim full control over node addresses, and it keeps the Go
// garbage collector out of the measured loops (see DESIGN.md §1).
package tree

import (
	"errors"
	"fmt"
	"math/rand"
)

// NodeID identifies a node within a Topology. IDs are dense: a Topology with
// n nodes uses IDs 0..n-1. The zero-size "absent child" is represented by Nil.
type NodeID int32

// Nil is the absent-node sentinel (the equivalent of a null child pointer).
const Nil NodeID = -1

// Topology is the shape of a binary tree: children, subtree sizes, and the
// preorder numbering used by the counter optimization of paper §4.3. It holds
// no payload; benchmarks attach payload as parallel slices indexed by NodeID.
//
// A Topology is immutable after construction and safe for concurrent readers.
type Topology struct {
	left   []NodeID
	right  []NodeID
	parent []NodeID
	size   []int32  // subtree sizes (node itself + descendants)
	order  []int32  // preorder index of each node (root = 0)
	next   []int32  // order of the first preorder position after the node's subtree
	byPre  []NodeID // inverse of order: byPre[order[n]] == n
	root   NodeID
}

// Len reports the number of nodes in the tree.
func (t *Topology) Len() int { return len(t.left) }

// Root returns the root node, or Nil for an empty tree.
func (t *Topology) Root() NodeID { return t.root }

// Left returns the left child of n, or Nil.
func (t *Topology) Left(n NodeID) NodeID { return t.left[n] }

// Right returns the right child of n, or Nil.
func (t *Topology) Right(n NodeID) NodeID { return t.right[n] }

// Parent returns the parent of n, or Nil for the root.
func (t *Topology) Parent(n NodeID) NodeID { return t.parent[n] }

// Size returns the subtree size rooted at n. Size(Nil) == 0, matching the
// convention the twisting schedule relies on when comparing child sizes
// (paper Fig 4a: "o.c1.size <= i.size").
func (t *Topology) Size(n NodeID) int32 {
	if n == Nil {
		return 0
	}
	return t.size[n]
}

// Order returns the preorder index of n (root is 0). This is the node
// numbering required by the counter optimization of paper §4.3, which demands
// "only one traversal order for the inner tree, determined a priori".
func (t *Topology) Order(n NodeID) int32 { return t.order[n] }

// Next returns the preorder index of the first node *after* n's subtree in
// preorder; equivalently Order(n) + Size(n). The §4.3 counter optimization
// sets an outer node's counter to this value so the node is naturally
// "untruncated" once the truncating inner subtree completes.
func (t *Topology) Next(n NodeID) int32 { return t.next[n] }

// ByPreorder returns the node whose preorder index is k.
func (t *Topology) ByPreorder(k int32) NodeID { return t.byPre[k] }

// IsLeaf reports whether n has no children.
func (t *Topology) IsLeaf(n NodeID) bool { return t.left[n] == Nil && t.right[n] == Nil }

// Height returns the height of the tree in edges (-1 for an empty tree).
func (t *Topology) Height() int {
	var h func(n NodeID) int
	h = func(n NodeID) int {
		if n == Nil {
			return -1
		}
		l, r := h(t.left[n]), h(t.right[n])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

// Preorder appends the nodes of the tree in preorder to dst and returns it.
func (t *Topology) Preorder(dst []NodeID) []NodeID {
	var walk func(n NodeID)
	walk = func(n NodeID) {
		if n == Nil {
			return
		}
		dst = append(dst, n)
		walk(t.left[n])
		walk(t.right[n])
	}
	walk(t.root)
	return dst
}

// Leaves appends the leaf nodes in preorder to dst and returns it.
func (t *Topology) Leaves(dst []NodeID) []NodeID {
	for _, n := range t.Preorder(nil) {
		if t.IsLeaf(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// Ancestors reports whether a is an ancestor of (or equal to) n, using the
// preorder interval test order(a) <= order(n) < next(a).
func (t *Topology) Ancestors(a, n NodeID) bool {
	return t.order[a] <= t.order[n] && t.order[n] < t.next[a]
}

// Validate checks the structural invariants of the topology: every node is
// reachable exactly once from the root, parent/child links agree, subtree
// sizes are consistent, and the preorder numbering is a bijection with
// next = order + size. It is used by tests and by builders in this package.
func (t *Topology) Validate() error {
	n := t.Len()
	if n == 0 {
		if t.root != Nil {
			return errors.New("tree: empty topology with non-nil root")
		}
		return nil
	}
	if t.root < 0 || int(t.root) >= n {
		return fmt.Errorf("tree: root %d out of range [0,%d)", t.root, n)
	}
	if t.parent[t.root] != Nil {
		return fmt.Errorf("tree: root %d has parent %d", t.root, t.parent[t.root])
	}
	seen := make([]bool, n)
	var count int
	var walk func(id NodeID) (int32, error)
	walk = func(id NodeID) (int32, error) {
		if id == Nil {
			return 0, nil
		}
		if id < 0 || int(id) >= n {
			return 0, fmt.Errorf("tree: node id %d out of range", id)
		}
		if seen[id] {
			return 0, fmt.Errorf("tree: node %d reachable twice", id)
		}
		seen[id] = true
		count++
		for _, c := range [2]NodeID{t.left[id], t.right[id]} {
			if c != Nil && t.parent[c] != id {
				return 0, fmt.Errorf("tree: child %d of %d has parent %d", c, id, t.parent[c])
			}
		}
		ls, err := walk(t.left[id])
		if err != nil {
			return 0, err
		}
		rs, err := walk(t.right[id])
		if err != nil {
			return 0, err
		}
		sz := ls + rs + 1
		if t.size[id] != sz {
			return 0, fmt.Errorf("tree: node %d size %d, computed %d", id, t.size[id], sz)
		}
		if t.next[id] != t.order[id]+sz {
			return 0, fmt.Errorf("tree: node %d next %d != order %d + size %d", id, t.next[id], t.order[id], sz)
		}
		return sz, nil
	}
	if _, err := walk(t.root); err != nil {
		return err
	}
	if count != n {
		return fmt.Errorf("tree: %d of %d nodes reachable from root", count, n)
	}
	for k := int32(0); int(k) < n; k++ {
		id := t.byPre[k]
		if id < 0 || int(id) >= n || t.order[id] != k {
			return fmt.Errorf("tree: preorder index %d maps to node %d with order %d", k, id, t.order[id])
		}
	}
	return nil
}

// finish computes sizes, preorder numbering, next pointers, and the inverse
// preorder map. Builders call it once links are in place.
func (t *Topology) finish() {
	n := t.Len()
	t.size = make([]int32, n)
	t.order = make([]int32, n)
	t.next = make([]int32, n)
	t.byPre = make([]NodeID, n)
	var pre int32
	visited := make([]bool, n)
	var walk func(id NodeID) int32
	walk = func(id NodeID) int32 {
		if id == Nil || visited[id] {
			// Revisits indicate a cyclic or shared-node input; stop the walk
			// here and let Validate report the malformed topology.
			return 0
		}
		visited[id] = true
		t.order[id] = pre
		t.byPre[pre] = id
		pre++
		sz := walk(t.left[id]) + walk(t.right[id]) + 1
		t.size[id] = sz
		t.next[id] = t.order[id] + sz
		return sz
	}
	walk(t.root)
}

// Builder constructs a Topology node by node. It exists for tests and for
// callers (kd-tree, vp-tree, matrix range trees) that derive tree shape from
// data rather than from a size parameter.
type Builder struct {
	left, right, parent []NodeID
}

// NewBuilder returns a Builder with capacity for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{
		left:   make([]NodeID, 0, n),
		right:  make([]NodeID, 0, n),
		parent: make([]NodeID, 0, n),
	}
}

// Add appends a new node with no children and returns its id.
func (b *Builder) Add() NodeID {
	id := NodeID(len(b.left))
	b.left = append(b.left, Nil)
	b.right = append(b.right, Nil)
	b.parent = append(b.parent, Nil)
	return id
}

// SetLeft links c as the left child of p. c may be Nil.
func (b *Builder) SetLeft(p, c NodeID) {
	b.left[p] = c
	if c != Nil {
		b.parent[c] = p
	}
}

// SetRight links c as the right child of p. c may be Nil.
func (b *Builder) SetRight(p, c NodeID) {
	b.right[p] = c
	if c != Nil {
		b.parent[c] = p
	}
}

// Build finalizes the topology with the given root and validates it.
func (b *Builder) Build(root NodeID) (*Topology, error) {
	t := &Topology{left: b.left, right: b.right, parent: b.parent, root: root}
	if len(b.left) == 0 {
		t.root = Nil
	}
	t.finish()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build that panics on error; for tests and internal builders.
func (b *Builder) MustBuild(root NodeID) *Topology {
	t, err := b.Build(root)
	if err != nil {
		panic(err)
	}
	return t
}

// NewBalanced builds a balanced binary tree with n nodes. Node IDs are
// assigned in preorder, so ID order equals traversal order — the allocation
// discipline a preorder-packed C++ arena would produce, and the layout the
// memsim address model assumes by default.
func NewBalanced(n int) *Topology {
	b := NewBuilder(n)
	var build func(count int) NodeID
	build = func(count int) NodeID {
		if count == 0 {
			return Nil
		}
		id := b.Add()
		lc := (count - 1) / 2
		l := build(lc)
		r := build(count - 1 - lc)
		b.SetLeft(id, l)
		b.SetRight(id, r)
		return id
	}
	root := build(n)
	return b.MustBuild(root)
}

// NewPerfect builds a perfect binary tree of the given height in edges
// (height 0 is a single node); it has 2^(height+1)-1 nodes. The paper's
// running example (Fig 1b) uses two perfect trees of height 2 (7 nodes).
func NewPerfect(height int) *Topology {
	if height < 0 {
		return (&Builder{}).MustBuild(Nil)
	}
	n := (1 << (height + 1)) - 1
	return NewBalanced(n)
}

// NewChain builds a degenerate tree of n nodes where every node has only a
// right child. Per paper §2.1, the recursion template on such "list" trees
// devolves into a doubly-nested loop; tests use chains to cross-check the
// transformations against plain loop interchange/tiling intuition.
func NewChain(n int) *Topology {
	b := NewBuilder(n)
	var prev NodeID = Nil
	var root NodeID = Nil
	for k := 0; k < n; k++ {
		id := b.Add()
		if prev == Nil {
			root = id
		} else {
			b.SetRight(prev, id)
		}
		prev = id
	}
	return b.MustBuild(root)
}

// NewRandomBST builds the tree shape produced by inserting a random
// permutation of n keys into an unbalanced binary search tree, using the
// given seed. Expected height is O(log n) but with realistic irregularity —
// the "roughly balanced" regime the paper's locality analysis assumes (§3.2).
func NewRandomBST(n int, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := NewBuilder(n)
	keys := make([]int, 0, n)
	var root NodeID = Nil
	for _, key := range perm {
		id := b.Add()
		keys = append(keys, key)
		if root == Nil {
			root = id
			continue
		}
		cur := root
		for {
			if key < keys[cur] {
				if b.left[cur] == Nil {
					b.SetLeft(cur, id)
					break
				}
				cur = b.left[cur]
			} else {
				if b.right[cur] == Nil {
					b.SetRight(cur, id)
					break
				}
				cur = b.right[cur]
			}
		}
	}
	return b.MustBuild(root)
}
