package depcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
)

// The dynamic analysis above certifies schedule soundness; this file is the
// static half of the package's checking duties: a source-level rule that
// keeps the repository itself off its own deprecated API surface. The
// deprecated symbols stay exported for external callers and for the public
// facade, but new internal code must use the replacements — the schedule
// algebra instead of raw variant parsing, Exec.RunWith instead of
// RunParallel, memsim.New instead of the legacy hierarchy constructors.

// DeprecatedSymbols maps import path → banned identifiers → the replacement
// to name in the report.
var DeprecatedSymbols = map[string]map[string]string{
	"twist/internal/nest": {
		"ParseVariant": "internal/transform/algebra.ParseSchedule + Schedule.Variant",
		"RunParallel":  "Exec.RunWith with a RunConfig",
	},
	"twist/internal/memsim": {
		"NewHierarchy":     "memsim.New",
		"MustNewHierarchy": "memsim.MustNew",
		"Default":          "memsim.MustNew(memsim.DefaultGeometry())",
	},
}

// DeprecatedUse is one qualified reference to a deprecated symbol.
type DeprecatedUse struct {
	Pos         token.Position // file:line:col of the selector
	Symbol      string         // e.g. "nest.ParseVariant"
	Replacement string         // what new code should call instead
}

func (u DeprecatedUse) String() string {
	return fmt.Sprintf("%s: %s is deprecated; use %s", u.Pos, u.Symbol, u.Replacement)
}

// ScanDeprecated parses every .go file under root (skipping testdata
// directories) and returns each qualified use of a symbol in
// DeprecatedSymbols. It resolves import aliases per file, so renamed
// imports are caught; uses inside the symbol's own package are unqualified
// and therefore — deliberately — not reported. Callers apply their own
// allowlist (the public facade and the algebra's legacy-name backend are
// legitimate users).
func ScanDeprecated(root string) ([]DeprecatedUse, error) {
	var uses []DeprecatedUse
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("depcheck: %v", err)
		}
		uses = append(uses, scanFile(fset, file)...)
		return nil
	})
	return uses, err
}

// scanFile reports the deprecated qualified references in one parsed file.
func scanFile(fset *token.FileSet, file *ast.File) []DeprecatedUse {
	// Local name → banned-symbol table for the deprecated imports only.
	banned := make(map[string]map[string]string)
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		symbols, ok := DeprecatedSymbols[path]
		if !ok {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		banned[name] = symbols
	}
	if len(banned) == 0 {
		return nil
	}
	var uses []DeprecatedUse
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		replacement, ok := banned[pkg.Name][sel.Sel.Name]
		if !ok {
			return true
		}
		uses = append(uses, DeprecatedUse{
			Pos:         fset.Position(sel.Pos()),
			Symbol:      pkg.Name + "." + sel.Sel.Name,
			Replacement: replacement,
		})
		return true
	})
	return uses
}
