package depcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
)

// The dynamic analysis above certifies schedule soundness; this file is the
// static half of the package's checking duties: a source-level rule that
// keeps the repository itself off its own deprecated API surface. The
// deprecated symbols stay exported for external callers and for the public
// facade, but new internal code must use the replacements — the schedule
// algebra instead of raw variant parsing, Exec.RunWith instead of
// RunParallel, memsim.New instead of the legacy hierarchy constructors.

// DeprecatedSymbols maps import path → banned identifiers → the replacement
// to name in the report.
var DeprecatedSymbols = map[string]map[string]string{
	"twist/internal/nest": {
		"ParseVariant": "internal/transform/algebra.ParseSchedule + Schedule.Variant",
		"RunParallel":  "Exec.RunWith with a RunConfig",
	},
	"twist/internal/memsim": {
		"NewHierarchy":     "memsim.New",
		"MustNewHierarchy": "memsim.MustNew",
		"Default":          "memsim.MustNew(memsim.DefaultGeometry())",
	},
}

// DeprecatedUse is one qualified reference to a deprecated symbol.
type DeprecatedUse struct {
	Pos         token.Position // file:line:col of the selector
	Symbol      string         // e.g. "nest.ParseVariant"
	Replacement string         // what new code should call instead
}

func (u DeprecatedUse) String() string {
	return fmt.Sprintf("%s: %s is deprecated; use %s", u.Pos, u.Symbol, u.Replacement)
}

// ScanDeprecated parses every .go file under root (skipping testdata
// directories) and returns each qualified use of a symbol in
// DeprecatedSymbols. It resolves import aliases per file, so renamed
// imports are caught; uses inside the symbol's own package are unqualified
// and therefore — deliberately — not reported. Callers apply their own
// allowlist (the public facade and the algebra's legacy-name backend are
// legitimate users).
func ScanDeprecated(root string) ([]DeprecatedUse, error) {
	var uses []DeprecatedUse
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("depcheck: %v", err)
		}
		uses = append(uses, scanFile(fset, file)...)
		return nil
	})
	return uses, err
}

// execRunMethods are the legacy Exec run methods the unified facade
// entrypoint (twist.Run) replaces.
var execRunMethods = map[string]bool{
	"Run":        true,
	"RunContext": true,
	"RunFrom":    true,
	"RunWith":    true,
}

// ScanExecRuns parses every non-test .go file under root (skipping testdata
// directories) and returns each direct call of a legacy Exec run method —
// Run, RunContext, RunFrom, RunWith — on a value built by nest.New or
// nest.MustNew (through the internal package or the twist facade, under any
// import alias). Resolution is syntactic: an identifier counts as an Exec
// once a file-scope walk sees it assigned from New/MustNew, and chained
// calls like nest.MustNew(s).Run(v) are caught directly. Test files are
// exempt (they pin the legacy wrappers' behavior); callers apply their own
// allowlist for the facade implementation and the engine-infrastructure
// packages.
func ScanExecRuns(root string) ([]DeprecatedUse, error) {
	var uses []DeprecatedUse
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("depcheck: %v", err)
		}
		uses = append(uses, scanExecRunsFile(fset, file)...)
		return nil
	})
	return uses, err
}

// scanExecRunsFile reports the direct Exec run-method calls in one parsed
// file.
func scanExecRunsFile(fset *token.FileSet, file *ast.File) []DeprecatedUse {
	// Local names of the packages whose New/MustNew build an Exec.
	ctors := map[string]bool{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || (path != "twist" && path != "twist/internal/nest") {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		ctors[name] = true
	}
	if len(ctors) == 0 {
		return nil
	}
	isCtorCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkg, ok := sel.X.(*ast.Ident)
		return ok && ctors[pkg.Name] && (sel.Sel.Name == "New" || sel.Sel.Name == "MustNew")
	}

	// Pass 1: collect the identifiers the file binds to an Exec, via
	// assignment or var declaration. A single constructor call on the right
	// binds the first name on the left (nest.New's two-value form binds the
	// Exec first).
	execs := map[string]bool{}
	bind := func(lhs []ast.Expr, names []*ast.Ident, rhs []ast.Expr) {
		if len(rhs) == 1 && isCtorCall(rhs[0]) {
			if len(lhs) > 0 {
				if id, ok := lhs[0].(*ast.Ident); ok {
					execs[id.Name] = true
				}
			}
			if len(names) > 0 {
				execs[names[0].Name] = true
			}
			return
		}
		for k, r := range rhs {
			if !isCtorCall(r) {
				continue
			}
			if k < len(lhs) {
				if id, ok := lhs[k].(*ast.Ident); ok {
					execs[id.Name] = true
				}
			}
			if k < len(names) {
				execs[names[k].Name] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			bind(st.Lhs, nil, st.Rhs)
		case *ast.ValueSpec:
			bind(nil, st.Names, st.Values)
		}
		return true
	})

	// Pass 2: flag run-method calls on those identifiers or directly on a
	// constructor call.
	var uses []DeprecatedUse
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !execRunMethods[sel.Sel.Name] {
			return true
		}
		recv := ""
		switch x := sel.X.(type) {
		case *ast.Ident:
			if !execs[x.Name] {
				return true
			}
			recv = x.Name
		default:
			if !isCtorCall(sel.X) {
				return true
			}
			recv = "Exec"
		}
		uses = append(uses, DeprecatedUse{
			Pos:         fset.Position(sel.Pos()),
			Symbol:      recv + "." + sel.Sel.Name,
			Replacement: "the unified facade entrypoint twist.Run",
		})
		return true
	})
	return uses
}

// scanFile reports the deprecated qualified references in one parsed file.
func scanFile(fset *token.FileSet, file *ast.File) []DeprecatedUse {
	// Local name → banned-symbol table for the deprecated imports only.
	banned := make(map[string]map[string]string)
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		symbols, ok := DeprecatedSymbols[path]
		if !ok {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		banned[name] = symbols
	}
	if len(banned) == 0 {
		return nil
	}
	var uses []DeprecatedUse
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		replacement, ok := banned[pkg.Name][sel.Sel.Name]
		if !ok {
			return true
		}
		uses = append(uses, DeprecatedUse{
			Pos:         fset.Position(sel.Pos()),
			Symbol:      pkg.Name + "." + sel.Sel.Name,
			Replacement: replacement,
		})
		return true
	})
	return uses
}
