package depcheck

import (
	"strings"
	"testing"

	"twist/internal/dualtree"
	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
	"twist/internal/tree"
)

func spec(n int) nest.Spec {
	return nest.Spec{
		Outer: tree.NewBalanced(n),
		Inner: tree.NewBalanced(n),
		Work:  func(o, i tree.NodeID) {},
	}
}

// TJ-style: each iteration reads its two nodes, writes nothing shared
// (the global sum is a commutative reduction, omitted per package doc).
func TestIndependentWorkload(t *testing.T) {
	s := spec(15)
	res, err := Analyze(s, func(o, i tree.NodeID) ([]Loc, []Loc) {
		return []Loc{Loc(o), 1000 + Loc(i)}, nil
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != Independent || !res.Sound() {
		t.Fatalf("TJ-style footprint classified %v", res.Kind)
	}
	if res.Iterations != 15*15 {
		t.Fatalf("analyzed %d iterations", res.Iterations)
	}
}

// NN-style: each column owns per-column state it reads and writes across its
// inner traversal — inner-carried only, outer recursion parallel.
func TestInnerCarriedWorkload(t *testing.T) {
	s := spec(15)
	res, err := Analyze(s, func(o, i tree.NodeID) ([]Loc, []Loc) {
		bound := Loc(5000) + Loc(o)
		return []Loc{bound, 1000 + Loc(i)}, []Loc{bound}
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != InnerCarried {
		t.Fatalf("inner-carried footprint classified %v", res.Kind)
	}
	if !res.Sound() {
		t.Fatal("parallel outer recursion reported unsound")
	}
}

// A shared non-commutative accumulator written by every column: cross-column
// W→W, unsound for §3.3.
func TestCrossColumnWrite(t *testing.T) {
	s := spec(7)
	res, err := Analyze(s, func(o, i tree.NodeID) ([]Loc, []Loc) {
		return nil, []Loc{42}
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != CrossColumn || res.Sound() {
		t.Fatalf("shared write classified %v", res.Kind)
	}
	if len(res.Conflicts) == 0 || len(res.Conflicts) > 3 {
		t.Fatalf("%d conflicts retained", len(res.Conflicts))
	}
	if !strings.Contains(res.Conflicts[0].String(), "writes loc 0x2a") {
		t.Fatalf("conflict rendering: %s", res.Conflicts[0])
	}
}

// One column writes what a later column reads: W→R across columns.
func TestCrossColumnFlow(t *testing.T) {
	s := spec(7)
	res, err := Analyze(s, func(o, i tree.NodeID) ([]Loc, []Loc) {
		if o == 0 && i == 0 {
			return nil, []Loc{7} // root column writes once
		}
		return []Loc{7}, nil // everyone else reads it
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != CrossColumn {
		t.Fatalf("flow dependence classified %v", res.Kind)
	}
	if w := res.Conflicts[0]; w.SecondWrites {
		t.Fatalf("conflict should be a read: %+v", w)
	}
}

// Early columns read, a late column writes: R→W (anti) across columns.
func TestCrossColumnAnti(t *testing.T) {
	s := spec(7)
	last := tree.NodeID(6) // highest preorder id in a 7-node balanced tree
	res, err := Analyze(s, func(o, i tree.NodeID) ([]Loc, []Loc) {
		if o == last && i == 0 {
			return nil, []Loc{9}
		}
		return []Loc{9}, nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != CrossColumn {
		t.Fatalf("anti dependence classified %v", res.Kind)
	}
}

// The real dual-tree NN: per-query bests and per-node bounds all live in
// query-tree (outer) indexed state, so the analysis certifies it.
func TestRealNNIsInnerCarried(t *testing.T) {
	q := kdtree.MustBuild(geom.Generate(geom.Uniform, 200, 1), 8)
	r := kdtree.MustBuild(geom.Generate(geom.Uniform, 200, 2), 8)
	nn := dualtree.NewNN(q, r)
	s := nn.Spec()
	// Footprint: work at (o, i) reads/writes the bests of o's points and the
	// bound of o (and ancestors; ancestors are shared across columns —
	// but only columns within the same subtree-path; for this certification
	// we model the per-leaf bound, which is what Score reads at leaf level).
	res, err := Analyze(s, func(o, i tree.NodeID) ([]Loc, []Loc) {
		if !q.Topo.IsLeaf(o) || !r.Topo.IsLeaf(i) {
			return nil, nil
		}
		var rw []Loc
		for k := q.Start[o]; k < q.End[o]; k++ {
			rw = append(rw, Loc(q.Perm[k]))
		}
		return rw, rw
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != InnerCarried {
		t.Fatalf("NN classified %v: %v", res.Kind, res.Conflicts)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(spec(3), nil, 0); err == nil {
		t.Fatal("nil footprint accepted")
	}
	bad := nest.Spec{}
	if _, err := Analyze(bad, func(o, i tree.NodeID) ([]Loc, []Loc) { return nil, nil }, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if Independent.String() != "independent" ||
		InnerCarried.String() != "inner-carried" ||
		CrossColumn.String() != "cross-column" ||
		Kind(9).String() != "unknown" {
		t.Fatal("Kind strings")
	}
}
