package depcheck

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deprecatedAllowlist holds the module-relative path prefixes that may keep
// using deprecated symbols: the public facade (it re-exports them with
// Deprecated markers) and the schedule algebra's legacy-name backend. Add
// an entry only when the use *is* the compatibility surface, never to ship
// a new internal call site.
var deprecatedAllowlist = []string{
	"twist.go",
	"twist_test.go",
	"internal/transform/algebra/",
}

// TestNoNewDeprecatedUses walks the whole module and fails on any qualified
// use of a deprecated symbol outside the allowlist — the enforcement half
// of the API redesign: the replacements (ParseSchedule, Exec.RunWith,
// memsim.New) are the only way to write new internal code.
func TestNoNewDeprecatedUses(t *testing.T) {
	t.Parallel()
	root := moduleRoot(t)
	uses, err := ScanDeprecated(root)
	if err != nil {
		t.Fatal(err)
	}
	var bad []string
	for _, u := range uses {
		rel, err := filepath.Rel(root, u.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		allowed := false
		for _, prefix := range deprecatedAllowlist {
			if rel == prefix || strings.HasPrefix(rel, prefix) {
				allowed = true
				break
			}
		}
		if !allowed {
			bad = append(bad, u.String())
		}
	}
	for _, line := range bad {
		t.Error(line)
	}
	if len(bad) > 0 {
		t.Error("route new code through the schedule algebra / RunWith / memsim.New; the allowlist is only for the compatibility surface")
	}
}

// TestScanDeprecatedFindsUses checks the scanner itself on a synthetic
// file: default and renamed imports are both resolved, in-package
// (unqualified) uses are ignored, and unrelated selectors pass.
func TestScanDeprecatedFindsUses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	src := `package scratch

import (
	"twist/internal/nest"
	ms "twist/internal/memsim"
)

func f() {
	nest.ParseVariant("twisted")
	nest.New(nest.Spec{})
	ms.Default()
	ms.New(ms.Geometry{})
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	uses, err := ScanDeprecated(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, u := range uses {
		got = append(got, u.Symbol)
	}
	want := []string{"nest.ParseVariant", "ms.Default"}
	if len(got) != len(want) {
		t.Fatalf("found %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("found %v, want %v", got, want)
		}
	}
	if !strings.Contains(uses[0].String(), "ParseSchedule") {
		t.Errorf("report %q does not name the replacement", uses[0])
	}
}

// moduleRoot locates the directory holding go.mod, verifying it is this
// module and not an enclosing one.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		mod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(mod); err == nil {
			if !strings.Contains(string(data), "module twist") {
				t.Fatalf("%s is not the twist module", mod)
			}
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// Guard against the scanner silently skipping files: the repository must
// actually contain the allowlisted uses (the facade really does call
// nest.RunParallel), or the rule is vacuous.
func TestScannerSeesFacade(t *testing.T) {
	t.Parallel()
	root := moduleRoot(t)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filepath.Join(root, "twist.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	uses := scanFile(fset, file)
	if len(uses) == 0 {
		t.Fatal("scanner found no deprecated uses in the facade; the rule would be vacuous")
	}
}
