package depcheck

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deprecatedAllowlist holds the module-relative path prefixes that may keep
// using deprecated symbols: the public facade (it re-exports them with
// Deprecated markers) and the schedule algebra's legacy-name backend. Add
// an entry only when the use *is* the compatibility surface, never to ship
// a new internal call site.
var deprecatedAllowlist = []string{
	"twist.go",
	"twist_test.go",
}

// TestNoNewDeprecatedUses walks the whole module and fails on any qualified
// use of a deprecated symbol outside the allowlist — the enforcement half
// of the API redesign: the replacements (ParseSchedule, Exec.RunWith,
// memsim.New) are the only way to write new internal code.
func TestNoNewDeprecatedUses(t *testing.T) {
	t.Parallel()
	root := moduleRoot(t)
	uses, err := ScanDeprecated(root)
	if err != nil {
		t.Fatal(err)
	}
	var bad []string
	for _, u := range uses {
		rel, err := filepath.Rel(root, u.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		allowed := false
		for _, prefix := range deprecatedAllowlist {
			if rel == prefix || strings.HasPrefix(rel, prefix) {
				allowed = true
				break
			}
		}
		if !allowed {
			bad = append(bad, u.String())
		}
	}
	for _, line := range bad {
		t.Error(line)
	}
	if len(bad) > 0 {
		t.Error("route new code through the schedule algebra / RunWith / memsim.New; the allowlist is only for the compatibility surface")
	}
}

// execRunAllowlist holds the module-relative path prefixes that may call
// the legacy Exec run methods directly: the facade implementation and the
// engine-infrastructure packages that *are* the replacements' plumbing
// (harness entry points, oracle runners, layout recording, measurement
// loops). Everything else — examples included — goes through twist.Run.
var execRunAllowlist = []string{
	"run.go",                // the facade implementation itself
	"internal/sched/",       // schedule recording drives the engine directly
	"internal/workloads/",   // Instance.Run* are the harness entry points
	"internal/layout/",      // first-touch layout recording
	"internal/oracle/",      // differential runners
	"internal/loopnest/",    // the §7.2 loop front-end
	"internal/depcheck/",    // the dynamic dependence analysis
	"internal/experiments/", // measurement harnesses
}

// TestNoNewDirectExecRuns is the run-surface half of the API redesign: new
// code outside the facade and the engine infrastructure must call twist.Run,
// not the legacy Exec methods.
func TestNoNewDirectExecRuns(t *testing.T) {
	t.Parallel()
	root := moduleRoot(t)
	uses, err := ScanExecRuns(root)
	if err != nil {
		t.Fatal(err)
	}
	var bad []string
	for _, u := range uses {
		rel, err := filepath.Rel(root, u.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		allowed := false
		for _, prefix := range execRunAllowlist {
			if rel == prefix || strings.HasPrefix(rel, prefix) {
				allowed = true
				break
			}
		}
		if !allowed {
			bad = append(bad, u.String())
		}
	}
	for _, line := range bad {
		t.Error(line)
	}
	if len(bad) > 0 {
		t.Error("call twist.Run instead of the Exec run methods; the allowlist is only for the facade and the engine infrastructure")
	}
}

// TestScanExecRunsFindsUses checks the run-method scanner on a synthetic
// file: ctor-bound identifiers (both assignment forms and var declarations),
// chained constructor calls, and renamed imports are caught; unrelated
// receivers with the same method names are not.
func TestScanExecRunsFindsUses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	src := `package scratch

import (
	nn "twist/internal/nest"
)

var global = nn.MustNew(nn.Spec{})

func f(other interface{ Run(v int) }) {
	e := nn.MustNew(nn.Spec{})
	e.Run(nn.Twisted())
	e2, err := nn.New(nn.Spec{})
	_ = err
	e2.RunWith(nn.RunConfig{})
	nn.MustNew(nn.Spec{}).RunFrom(nn.Twisted(), 0, 0)
	global.RunContext(nil, nn.Twisted())
	other.Run(1)
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	uses, err := ScanExecRuns(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, u := range uses {
		got = append(got, u.Symbol)
	}
	want := []string{"e.Run", "e2.RunWith", "Exec.RunFrom", "global.RunContext"}
	if len(got) != len(want) {
		t.Fatalf("found %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("found %v, want %v", got, want)
		}
	}
}

// TestScanDeprecatedFindsUses checks the scanner itself on a synthetic
// file: default and renamed imports are both resolved, in-package
// (unqualified) uses are ignored, and unrelated selectors pass.
func TestScanDeprecatedFindsUses(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	src := `package scratch

import (
	"twist/internal/nest"
	ms "twist/internal/memsim"
)

func f() {
	nest.ParseVariant("twisted")
	nest.New(nest.Spec{})
	ms.Default()
	ms.New(ms.Geometry{})
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	uses, err := ScanDeprecated(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, u := range uses {
		got = append(got, u.Symbol)
	}
	want := []string{"nest.ParseVariant", "ms.Default"}
	if len(got) != len(want) {
		t.Fatalf("found %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("found %v, want %v", got, want)
		}
	}
	if !strings.Contains(uses[0].String(), "ParseSchedule") {
		t.Errorf("report %q does not name the replacement", uses[0])
	}
}

// moduleRoot locates the directory holding go.mod, verifying it is this
// module and not an enclosing one.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		mod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(mod); err == nil {
			if !strings.Contains(string(data), "module twist") {
				t.Fatalf("%s is not the twist module", mod)
			}
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// Guard against the scanner silently skipping files: the repository must
// actually contain the allowlisted uses (the facade really does call
// nest.RunParallel), or the rule is vacuous.
func TestScannerSeesFacade(t *testing.T) {
	t.Parallel()
	root := moduleRoot(t)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filepath.Join(root, "twist.go"), nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	uses := scanFile(fset, file)
	if len(uses) == 0 {
		t.Fatal("scanner found no deprecated uses in the facade; the rule would be vacuous")
	}
}
