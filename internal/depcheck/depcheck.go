// Package depcheck provides a dynamic soundness check for the paper's §3.3
// criterion. The paper establishes that recursion twisting is sound whenever
// recursion interchange is, and that a sufficient condition for the latter
// is a "parallel" outer recursion: different outer-recursion invocations
// (columns of the iteration space) are independent — the only dependences
// are carried over the inner recursion. The paper leaves an analysis proving
// this property to future work; this package implements the dynamic analog:
// it executes the original schedule on a concrete input, records the
// read/write footprint of every iteration, and reports whether any
// dependence crosses columns.
//
// A clean report certifies soundness *for that input*; like any dynamic
// analysis it cannot prove soundness for all inputs, but it catches unsound
// annotations in practice and documents the dependence structure
// (cross-column, inner-carried, or none). Commutative reductions (a shared
// accumulator updated with +, max, …) should be omitted from footprints, as
// the paper does when it classifies TJ and MM as having "no dependences".
package depcheck

import (
	"fmt"

	"twist/internal/nest"
	"twist/internal/tree"
)

// Loc is an abstract memory location (an address, an array index, a node
// id — any stable identifier).
type Loc uint64

// Footprint reports the locations one work(o, i) invocation reads and
// writes. It must be pure with respect to the traversal (called once per
// executed iteration, in original-schedule order).
type Footprint func(o, i tree.NodeID) (reads, writes []Loc)

// Kind classifies the dependence structure found.
type Kind int

const (
	// Independent: no two iterations conflict at all (TJ and MM, §6.1).
	Independent Kind = iota
	// InnerCarried: conflicts exist but stay within single columns — the
	// paper's "dependences carried over the inner recursion" (PC, NN, KNN,
	// VP). The outer recursion is parallel; interchange and twisting are
	// sound (§3.3).
	InnerCarried
	// CrossColumn: some dependence links different outer nodes; the §3.3
	// sufficient condition fails and the transformations are not certified.
	CrossColumn
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Independent:
		return "independent"
	case InnerCarried:
		return "inner-carried"
	case CrossColumn:
		return "cross-column"
	}
	return "unknown"
}

// Conflict is a sample cross-column dependence: two iterations in different
// columns touching the same location, at least one writing it.
type Conflict struct {
	Loc          Loc
	FirstOuter   tree.NodeID // column that wrote the location first
	SecondOuter  tree.NodeID // later column that read or wrote it
	SecondWrites bool
}

// String implements fmt.Stringer.
func (c Conflict) String() string {
	op := "reads"
	if c.SecondWrites {
		op = "writes"
	}
	return fmt.Sprintf("column %d writes loc %#x; column %d later %s it",
		c.FirstOuter, c.Loc, c.SecondOuter, op)
}

// Result is the outcome of an analysis.
type Result struct {
	Kind      Kind
	Conflicts []Conflict // up to the maxConflicts sample cross-column conflicts
	// Iterations is the number of work invocations analyzed.
	Iterations int64
}

// Sound reports whether the §3.3 sufficient condition held on this input:
// the outer recursion is parallel, so interchange — and therefore twisting —
// preserves every dependence.
func (r Result) Sound() bool { return r.Kind != CrossColumn }

// locState tracks, per location, the last writing column and the first two
// distinct columns that read it since that write. Two reader slots are
// enough to witness "some reader differs from a subsequent writer": the
// first two *distinct* readers cannot both equal the writer.
type locState struct {
	writer    tree.NodeID // last column that wrote (Nil if none)
	r1, r2    tree.NodeID // first two distinct readers since the last write
	selfConfl bool        // some same-column dependence seen
}

// Analyze runs the original schedule of s, feeding every executed iteration
// to fp, and classifies the dependence structure. maxConflicts bounds the
// number of sample conflicts retained (0 keeps none).
func Analyze(s nest.Spec, fp Footprint, maxConflicts int) (Result, error) {
	if fp == nil {
		return Result{}, fmt.Errorf("depcheck: nil footprint")
	}
	res := Result{}
	state := make(map[Loc]*locState)
	innerConflict := false

	crossConflict := func(loc Loc, first, second tree.NodeID, secondWrites bool) {
		res.Kind = CrossColumn
		if len(res.Conflicts) < maxConflicts {
			res.Conflicts = append(res.Conflicts, Conflict{
				Loc: loc, FirstOuter: first, SecondOuter: second, SecondWrites: secondWrites,
			})
		}
	}

	record := func(o tree.NodeID, loc Loc, writes bool) {
		st, ok := state[loc]
		if !ok {
			st = &locState{writer: tree.Nil, r1: tree.Nil, r2: tree.Nil}
			state[loc] = st
		}
		// Flow dependence (W→R or W→W) against the last writer.
		if st.writer != tree.Nil {
			if st.writer != o {
				crossConflict(loc, st.writer, o, writes)
			} else {
				st.selfConfl = true
			}
		}
		if writes {
			// Anti dependence (R→W) against any reader since the last write.
			for _, r := range [2]tree.NodeID{st.r1, st.r2} {
				if r == tree.Nil {
					continue
				}
				if r != o {
					crossConflict(loc, r, o, true)
				} else {
					st.selfConfl = true
				}
			}
			st.writer = o
			st.r1, st.r2 = tree.Nil, tree.Nil
		} else if st.r1 != o && st.r2 != o {
			if st.r1 == tree.Nil {
				st.r1 = o
			} else if st.r2 == tree.Nil {
				st.r2 = o
			}
		}
		if st.selfConfl {
			innerConflict = true
		}
	}

	spec := s
	spec.Work = func(o, i tree.NodeID) {
		res.Iterations++
		reads, writes := fp(o, i)
		for _, l := range reads {
			record(o, l, false)
		}
		for _, l := range writes {
			record(o, l, true)
		}
	}
	e, err := nest.New(spec)
	if err != nil {
		return Result{}, err
	}
	e.Run(nest.Original())
	if res.Kind != CrossColumn {
		if innerConflict {
			res.Kind = InnerCarried
		} else {
			res.Kind = Independent
		}
	}
	return res, nil
}
