package twist_test

import (
	"fmt"

	"twist"
)

// The paper's running example: joining two 7-node trees. Twisting visits
// the same 49 pairs in a cache-oblivious order.
func Example() {
	outer := twist.NewPerfectTree(2)
	inner := twist.NewPerfectTree(2)
	var pairs int
	exec := twist.MustNew(twist.Spec{
		Outer: outer,
		Inner: inner,
		Work:  func(o, i twist.NodeID) { pairs++ },
	})
	exec.Run(twist.Twisted())
	fmt.Println(pairs, "pairs,", exec.Stats.Twists, "twists")
	// Output: 49 pairs, 62 twists
}

// Recording a schedule and checking the §3.3 soundness conditions.
func ExampleCheckSchedule() {
	spec := twist.Spec{
		Outer: twist.NewPerfectTree(1),
		Inner: twist.NewPerfectTree(1),
		Work:  func(o, i twist.NodeID) {},
	}
	ref, _ := twist.Record(spec, twist.Original())
	tw, _ := twist.Record(spec, twist.Twisted())
	fmt.Println(twist.CheckSchedule(ref, tw))
	// Output: <nil>
}

// A doubly-nested loop executed as a twisted recursion (§7.2): automatic
// multi-level tiling with no cache parameters.
func ExampleNewLoopNest() {
	ln, _ := twist.NewLoopNest(4, 4, 1)
	var sum int
	ln.Run(func(o, i int) { sum += o * i }, twist.Twisted())
	fmt.Println(sum)
	// Output: 36
}

// Classifying a program's dependence structure (§3.3): per-column state
// makes the outer recursion parallel, so the transformations are sound.
func ExampleAnalyzeDependences() {
	spec := twist.Spec{
		Outer: twist.NewBalancedTree(7),
		Inner: twist.NewBalancedTree(7),
		Work:  func(o, i twist.NodeID) {},
	}
	res, _ := twist.AnalyzeDependences(spec, func(o, i twist.NodeID) (reads, writes []twist.Loc) {
		perColumn := twist.Loc(o)
		return []twist.Loc{perColumn}, []twist.Loc{perColumn}
	}, 0)
	fmt.Println(res.Kind, res.Sound())
	// Output: inner-carried true
}
