// Benchmarks regenerating each table and figure of the paper's evaluation
// (one Benchmark per artifact; cmd/nestbench prints the corresponding
// tables). Scales are reduced relative to cmd/nestbench defaults so the
// whole suite runs in minutes; EXPERIMENTS.md records full-scale runs.
package twist_test

import (
	"testing"

	"twist/internal/experiments"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/workloads"
)

// benchScale is the dual-tree point count used by the figure benchmarks.
const benchScale = 4096

// BenchmarkFig5 regenerates the Fig 5 reuse-distance CDF (tree join, two
// 1024-node trees, original vs twisted).
func BenchmarkFig5(b *testing.B) {
	for k := 0; k < b.N; k++ {
		rows := experiments.Fig5(1024, 1)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig7 regenerates Fig 7: wall-clock time of each benchmark under
// the baseline and twisted schedules. The speedup of a benchmark is the
// ratio of its "original" to its "twisted" sub-benchmark times.
func BenchmarkFig7(b *testing.B) {
	for _, in := range workloads.Suite(benchScale, 42) {
		in := in
		e := nest.MustNew(in.Spec)
		for _, v := range []nest.Variant{nest.Original(), nest.Twisted()} {
			v := v
			b.Run(in.Name+"/"+v.String(), func(b *testing.B) {
				for k := 0; k < b.N; k++ {
					in.Reset()
					e.Run(v)
				}
			})
		}
	}
}

// BenchmarkFig8a regenerates the Fig 8(a) instruction-overhead measurement
// (instrumented runs under the dynamic operation model).
func BenchmarkFig8a(b *testing.B) {
	for k := 0; k < b.N; k++ {
		rows := experiments.Fig8a(benchScale, 42)
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig8b regenerates one cell of Fig 8(b): a trace-driven cache
// simulation of the TJ benchmark under both schedules.
func BenchmarkFig8b(b *testing.B) {
	in := workloads.TreeJoin(2048, 42)
	for _, v := range []nest.Variant{nest.Original(), nest.Twisted()} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				h := experiments.SimHierarchy()
				in.Reset()
				s := in.TracedSpec(func(a memsim.Addr) { h.Access(a) })
				e := nest.MustNew(s)
				e.Run(v)
			}
		})
	}
}

// BenchmarkFig9 regenerates one sweep point of Fig 9 (PC at a single input
// size, speedup + miss rates).
func BenchmarkFig9(b *testing.B) {
	for k := 0; k < b.N; k++ {
		if _, err := experiments.Fig9([]int{2048}, 0.4, 42, 1, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the Fig 10 cutoff study at benchmark scale.
func BenchmarkFig10(b *testing.B) {
	for k := 0; k < b.N; k++ {
		if _, err := experiments.Fig10(2048, 0.4, []int{16, 256}, 42, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTblIters regenerates the §4.2 iteration-count comparison.
func BenchmarkTblIters(b *testing.B) {
	for k := 0; k < b.N; k++ {
		rows := experiments.TblIters(2048, 0.4, 42)
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}
