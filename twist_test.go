package twist_test

import (
	"sync/atomic"
	"testing"

	"twist"
)

// The README quick-start, as a compiling test: twisting reorders iterations
// without changing the set of work performed.
func TestQuickStart(t *testing.T) {
	outer := twist.NewBalancedTree(1 << 6)
	inner := twist.NewBalancedTree(1 << 6)
	var visits int
	spec := twist.Spec{
		Outer: outer,
		Inner: inner,
		Work:  func(o, i twist.NodeID) { visits++ },
	}
	exec := twist.MustNew(spec)
	res, err := twist.Run(exec, twist.WithVariant(twist.Twisted()))
	if err != nil {
		t.Fatal(err)
	}
	if visits != (1<<6)*(1<<6) {
		t.Fatalf("twisted run visited %d pairs, want %d", visits, (1<<6)*(1<<6))
	}
	if res.Stats.Twists == 0 {
		t.Fatal("twisting never switched orientation")
	}
}

func TestFacadeScheduleChecking(t *testing.T) {
	s := twist.Spec{
		Outer: twist.NewRandomBST(40, 1),
		Inner: twist.NewRandomBST(50, 2),
		Work:  func(o, i twist.NodeID) {},
	}
	ref, err := twist.Record(s, twist.Original())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []twist.Variant{twist.Interchanged(), twist.Twisted(), twist.TwistedCutoff(8)} {
		got, err := twist.Record(s, v)
		if err != nil {
			t.Fatal(err)
		}
		if err := twist.CheckSchedule(ref, got); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestFacadeGrid(t *testing.T) {
	s := twist.Spec{
		Outer: twist.NewPerfectTree(2),
		Inner: twist.NewPerfectTree(2),
		Work:  func(o, i twist.NodeID) {},
	}
	pairs, err := twist.Record(s, twist.Twisted())
	if err != nil {
		t.Fatal(err)
	}
	if g := twist.RenderGrid(s.Outer, s.Inner, pairs); len(g) == 0 {
		t.Fatal("empty grid")
	}
}

func TestFacadeChain(t *testing.T) {
	// Chains devolve the template to a plain doubly-nested loop.
	s := twist.Spec{
		Outer: twist.NewChainTree(5),
		Inner: twist.NewChainTree(5),
		Work:  func(o, i twist.NodeID) {},
	}
	pairs, err := twist.Record(s, twist.Original())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 25 {
		t.Fatalf("%d pairs", len(pairs))
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := twist.NewTreeBuilder(3)
	root := b.Add()
	l, r := b.Add(), b.Add()
	b.SetLeft(root, l)
	b.SetRight(root, r)
	topo, err := b.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 3 || topo.Size(root) != 3 {
		t.Fatal("builder topology malformed")
	}
}

func TestFacadeLoopNest(t *testing.T) {
	ln, err := twist.NewLoopNest(6, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	ln.Run(func(o, i int) { count++ }, twist.Twisted())
	if count != 24 {
		t.Fatalf("loop nest executed %d iterations", count)
	}
	if _, err := twist.NewLoopNest(0, 4, 1); err == nil {
		t.Fatal("invalid bounds accepted")
	}
}

func TestFacadeDependenceAnalysis(t *testing.T) {
	s := twist.Spec{
		Outer: twist.NewBalancedTree(7),
		Inner: twist.NewBalancedTree(7),
		Work:  func(o, i twist.NodeID) {},
	}
	res, err := twist.AnalyzeDependences(s, func(o, i twist.NodeID) ([]twist.Loc, []twist.Loc) {
		return []twist.Loc{twist.Loc(o)}, nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != twist.Independent || !res.Sound() {
		t.Fatalf("read-only footprint classified %v", res.Kind)
	}
	res, err = twist.AnalyzeDependences(s, func(o, i twist.NodeID) ([]twist.Loc, []twist.Loc) {
		return nil, []twist.Loc{1}
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != twist.CrossColumn || res.Sound() {
		t.Fatalf("shared write classified %v", res.Kind)
	}
}

func TestFacadeRunParallel(t *testing.T) {
	var n atomic.Int64
	s := twist.Spec{
		Outer: twist.NewBalancedTree(31),
		Inner: twist.NewBalancedTree(31),
		Work:  func(o, i twist.NodeID) { n.Add(1) },
	}
	stats, err := twist.RunParallel(s, twist.Twisted(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 31*31 {
		t.Fatalf("parallel run performed %d work", n.Load())
	}
	if len(stats) < 2 {
		t.Fatalf("%d task stats", len(stats))
	}
}

// TestFacadeLayout exercises the arena-layout exports: every
// topology-determined layout yields a valid permutation, the repacked tree
// runs every schedule to the same visit count, and the parse/String forms
// round-trip.
func TestFacadeLayout(t *testing.T) {
	outer := twist.NewRandomBST(100, 7)
	for _, k := range []twist.LayoutKind{
		twist.BuildOrderLayout, twist.HotColdLayout,
		twist.PreorderLayout, twist.VEBLayout,
	} {
		parsed, err := twist.ParseLayout(k.String())
		if err != nil || parsed != k {
			t.Fatalf("ParseLayout(%q) = %v, %v", k.String(), parsed, err)
		}
		r, err := twist.RealizeLayout(k, outer)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		packed, err := twist.ApplyLayout(outer, r)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var visits int
		s := twist.Spec{
			Outer: packed,
			Inner: twist.NewBalancedTree(64),
			Work:  func(o, i twist.NodeID) { visits++ },
		}
		twist.MustNew(s).Run(twist.Twisted())
		if visits != 100*64 {
			t.Fatalf("%v: repacked run visited %d pairs, want %d", k, visits, 100*64)
		}
	}
	if _, err := twist.RealizeLayout(twist.ScheduleLayout, outer); err == nil {
		t.Fatal("RealizeLayout accepted the traversal-dependent schedule layout")
	}
}
