package twist_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twist"
)

// sumSpec builds a deterministic n×n join whose result lands in the returned
// atomic (safe for both sequential and parallel runs).
func sumSpec(n int) (twist.Spec, *atomic.Int64) {
	var sum atomic.Int64
	return twist.Spec{
		Outer: twist.NewBalancedTree(n),
		Inner: twist.NewBalancedTree(n),
		Work: func(o, i twist.NodeID) {
			sum.Add(int64(o)*31 + int64(i))
		},
	}, &sum
}

// The pinning contract of the unified entrypoint: Run with only a variant is
// byte-identical to the legacy Exec.Run — same Stats, same result — wrapped
// in the sequential RunResult shape.
func TestRunMatchesExecRun(t *testing.T) {
	for _, v := range []twist.Variant{
		twist.Original(), twist.Interchanged(), twist.Twisted(), twist.TwistedCutoff(8),
	} {
		legacySpec, legacySum := sumSpec(127)
		legacy := twist.MustNew(legacySpec)
		legacy.Run(v)

		spec, sum := sumSpec(127)
		res, err := twist.Run(twist.MustNew(spec), twist.WithVariant(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Stats != legacy.Stats {
			t.Errorf("%v: Run stats %+v, Exec.Run stats %+v", v, res.Stats, legacy.Stats)
		}
		if sum.Load() != legacySum.Load() {
			t.Errorf("%v: Run result %d, Exec.Run result %d", v, sum.Load(), legacySum.Load())
		}
		if res.Workers != 1 || res.Tasks != 1 || len(res.PerWorker) != 1 {
			t.Errorf("%v: sequential result shape %+v", v, res)
		}
		if res.EngineOps <= 0 {
			t.Errorf("%v: engine ops %d", v, res.EngineOps)
		}
	}
}

// WithWorkers(n > 1) must be byte-identical to the legacy Exec.RunWith on
// the work-stealing executor.
func TestRunMatchesRunWith(t *testing.T) {
	legacySpec, legacySum := sumSpec(255)
	want, err := twist.MustNew(legacySpec).RunWith(twist.RunConfig{
		Variant: twist.Twisted(), Workers: 4, Stealing: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	spec, sum := sumSpec(255)
	got, err := twist.Run(twist.MustNew(spec),
		twist.WithVariant(twist.Twisted()), twist.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats || got.Tasks != want.Tasks || got.EngineOps != want.EngineOps {
		t.Errorf("Run %+v, RunWith %+v", got, want)
	}
	if sum.Load() != legacySum.Load() {
		t.Errorf("Run result %d, RunWith result %d", sum.Load(), legacySum.Load())
	}
	if got.Workers != 4 {
		t.Errorf("workers %d, want 4", got.Workers)
	}
}

// The engine axis through the facade: bit-identical Stats and results, with
// the iterative engine's overhead counter strictly below the recursive one
// on the twisted schedule (DESIGN.md §4.13).
func TestRunEngineAxis(t *testing.T) {
	recSpec, recSum := sumSpec(255)
	rec, err := twist.Run(twist.MustNew(recSpec), twist.WithVariant(twist.Twisted()))
	if err != nil {
		t.Fatal(err)
	}
	iterSpec, iterSum := sumSpec(255)
	iter, err := twist.Run(twist.MustNew(iterSpec),
		twist.WithVariant(twist.Twisted()), twist.WithEngine(twist.EngineIterative))
	if err != nil {
		t.Fatal(err)
	}
	if iter.Stats != rec.Stats || iterSum.Load() != recSum.Load() {
		t.Errorf("engines diverge: iterative %+v sum=%d, recursive %+v sum=%d",
			iter.Stats, iterSum.Load(), rec.Stats, recSum.Load())
	}
	if iter.EngineOps <= 0 || iter.EngineOps >= rec.EngineOps {
		t.Errorf("iterative engine ops %d not below recursive %d", iter.EngineOps, rec.EngineOps)
	}
	if eng, err := twist.ParseEngine("iterative"); err != nil || eng != twist.EngineIterative {
		t.Errorf("ParseEngine(iterative) = %v, %v", eng, err)
	}
	if got := twist.Engines(); len(got) != 2 || got[0] != twist.EngineRecursive {
		t.Errorf("Engines() = %v", got)
	}
}

// WithSchedule lowers algebra schedules onto the same execution WithVariant
// selects; the two spellings are bit-identical.
func TestRunWithSchedule(t *testing.T) {
	exprSpec, _ := sumSpec(127)
	expr, err := twist.Run(twist.MustNew(exprSpec),
		twist.WithSchedule(twist.MustParseSchedule("stripmine(8)∘twist(flagged)")))
	if err != nil {
		t.Fatal(err)
	}
	varSpec, _ := sumSpec(127)
	v, err := twist.Run(twist.MustNew(varSpec), twist.WithVariant(twist.TwistedCutoff(8)))
	if err != nil {
		t.Fatal(err)
	}
	if expr.Stats != v.Stats {
		t.Errorf("schedule form %+v, variant form %+v", expr.Stats, v.Stats)
	}
}

// countRecorder is a concurrency-safe test Recorder.
type countRecorder struct {
	mu     sync.Mutex
	counts map[string]int64
	times  map[string]int
}

func (r *countRecorder) Count(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counts == nil {
		r.counts = map[string]int64{}
	}
	r.counts[name] += delta
}

func (r *countRecorder) Time(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.times == nil {
		r.times = map[string]int{}
	}
	r.times[name]++
}

// The sequential path honors the parallel executor's telemetry contract:
// the same keys, with the engine axis and carried dimensions pinned.
func TestRunTelemetryAndDimensions(t *testing.T) {
	spec, _ := sumSpec(127)
	rec := &countRecorder{}
	res, err := twist.Run(twist.MustNew(spec),
		twist.WithVariant(twist.Twisted()),
		twist.WithEngine(twist.EngineIterative),
		twist.WithLayout(twist.VEBLayout),
		twist.WithSimWorkers(2),
		twist.WithRecorder(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]int64{
		"nest.tasks":            1,
		"nest.workers":          1,
		"nest.engine.ops":       res.EngineOps,
		"nest.engine.iterative": 1,
		"nest.layout.veb":       1,
		"nest.simworkers":       2,
	} {
		if got := rec.counts[key]; got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	if rec.times["nest.run"] != 1 {
		t.Errorf("nest.run recorded %d times", rec.times["nest.run"])
	}

	// The default layout elides from telemetry, mirroring the serve API.
	spec2, _ := sumSpec(127)
	rec2 := &countRecorder{}
	if _, err := twist.Run(twist.MustNew(spec2),
		twist.WithLayout(twist.BuildOrderLayout), twist.WithRecorder(rec2)); err != nil {
		t.Fatal(err)
	}
	for key := range rec2.counts {
		if key == "nest.layout.buildorder" {
			t.Errorf("default layout leaked into telemetry: %v", rec2.counts)
		}
	}
	if rec2.counts["nest.engine.recursive"] != 1 {
		t.Errorf("default engine not pinned: %v", rec2.counts)
	}
}

// Cancellation and nil-Exec errors surface through the one entrypoint.
func TestRunErrors(t *testing.T) {
	if _, err := twist.Run(nil); err == nil {
		t.Error("Run(nil) succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, _ := sumSpec(255)
	if _, err := twist.Run(twist.MustNew(spec),
		twist.WithVariant(twist.Twisted()), twist.WithContext(ctx)); err == nil {
		t.Error("Run with a canceled context succeeded")
	}
}
