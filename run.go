package twist

// This file is the unified run surface of the API redesign: one entrypoint,
// Run, with functional options, replacing direct calls to the Exec methods
// Run, RunContext, RunFrom, and RunWith (which remain for compatibility —
// depcheck's ScanExecRuns keeps new call sites off them). Sequential and
// parallel execution, schedule selection, the visit-engine axis (DESIGN.md
// §4.13), carried measurement dimensions (layout, simulation workers), and
// telemetry all route through the same call.

import (
	"context"
	"fmt"

	"twist/internal/layout"
	"twist/internal/nest"
	"twist/internal/obs"
)

// Engine selects the visit-engine implementation: the recursive lowering of
// the paper's transformed code, or the iterative explicit-stack lowering
// that executes the identical schedule with a flat drain loop (DESIGN.md
// §4.13). The two engines are bit-identical in Stats, results, and oracle
// verdicts; the axis only moves the engine-overhead counter (RunResult.EngineOps).
type Engine = nest.Engine

// The visit engines. EngineRecursive is the default everywhere.
const (
	EngineRecursive = nest.EngineRecursive
	EngineIterative = nest.EngineIterative
)

// ParseEngine parses an Engine from its String form ("recursive" or
// "iterative").
func ParseEngine(name string) (Engine, error) { return nest.ParseEngine(name) }

// Engines returns all visit engines, recursive first.
func Engines() []Engine { return nest.Engines() }

// Recorder receives run telemetry; see internal/obs. Pass one to Run with
// WithRecorder. Implementations must be safe for concurrent use.
type Recorder = obs.Recorder

// runOptions accumulates one Run call's configuration. The zero value plus
// defaults() reproduces Exec.Run(Original()) exactly.
type runOptions struct {
	cfg      nest.RunConfig
	parallel bool
	flags    FlagMode
	flagsOn  bool
	subtree  bool
	subOn    bool
}

// RunOption configures one Run call; build them with the With* constructors.
type RunOption func(*runOptions)

// WithVariant selects the schedule variant to execute (default Original()).
func WithVariant(v Variant) RunOption {
	return func(o *runOptions) { o.cfg.Variant = v }
}

// WithSchedule selects the schedule by its algebra form, lowering it onto
// the engine's canonical variants via Schedule.Variant. Inlining terms are
// dropped by the lowering: they change generated code, not the visit order,
// so the execution is exact.
func WithSchedule(s Schedule) RunOption {
	return func(o *runOptions) { o.cfg.Variant = s.Variant() }
}

// WithEngine selects the visit engine (default EngineRecursive). Results,
// Stats, and oracle verdicts are bit-identical across engines.
func WithEngine(eng Engine) RunOption {
	return func(o *runOptions) { o.cfg.Engine = eng }
}

// WithWorkers sets the worker count. n >= 1 selects the parallel executor
// (work stealing by default; see WithStaticQueue) with the §7.3 spawn-depth
// decomposition and exactly n workers — n = 1 included, as the determinism
// baseline: merged Stats depend only on the spawn depth, never on n. The
// decomposition requires Spec.Work and the truncation predicates to be safe
// for concurrent calls on distinct outer subtrees. n <= 0 (like omitting
// the option) keeps the sequential engine: one goroutine, no decomposition,
// Tasks = 1 in the result. Pass runtime.GOMAXPROCS(0) explicitly to size to
// the machine.
func WithWorkers(n int) RunOption {
	return func(o *runOptions) {
		o.parallel = n >= 1
		o.cfg.Workers = n
	}
}

// WithStaticQueue selects the static task-queue executor instead of work
// stealing for parallel runs (identical merged Stats; stealing balances
// irregular spaces better). No effect on sequential runs.
func WithStaticQueue() RunOption {
	return func(o *runOptions) { o.cfg.Stealing = false }
}

// WithSpawnDepth sets the outer-tree depth of the §7.3 task decomposition
// for parallel runs (default DefaultSpawnDepth). Merged Stats depend only
// on this value, never on the worker count.
func WithSpawnDepth(d int) RunOption {
	return func(o *runOptions) { o.cfg.SpawnDepth = d }
}

// WithFlagMode selects the truncation-flag representation for irregular
// spaces (default FlagSets, the paper's Fig 6(b) protocol).
func WithFlagMode(fm FlagMode) RunOption {
	return func(o *runOptions) { o.flags, o.flagsOn = fm, true }
}

// WithSubtreeTruncation enables the §4.2 whole-subtree truncation
// optimization (requires Spec.Hereditary).
func WithSubtreeTruncation(on bool) RunOption {
	return func(o *runOptions) { o.subtree, o.subOn = on, true }
}

// WithContext attaches cooperative cancellation: the context is polled at
// outer-subtree granularity, and on cancellation Run returns ctx.Err() with
// the partial Stats.
func WithContext(ctx context.Context) RunOption {
	return func(o *runOptions) { o.cfg.Ctx = ctx }
}

// WithRecorder attaches telemetry: the run's wall clock ("nest.run"), the
// executor counters ("nest.tasks", "nest.workers", ...), the engine axis
// ("nest.engine.ops", "nest.engine.<name>"), and the merged operation
// counts (Stats.Record under "nest").
func WithRecorder(r Recorder) RunOption {
	return func(o *runOptions) { o.cfg.Recorder = r }
}

// WithLayout pins the arena layout dimension the run is measured under.
// Run itself never touches addresses — layouts apply where traces are
// generated — but telemetry must record the layout a measurement belongs
// to, so the dimension travels with the run ("nest.layout.<name>"; the
// default BuildOrderLayout elides, mirroring the serve API).
func WithLayout(k LayoutKind) RunOption {
	return func(o *runOptions) {
		if k == layout.BuildOrder {
			o.cfg.Layout = ""
			return
		}
		o.cfg.Layout = k.String()
	}
}

// WithSimWorkers pins the simulation-worker dimension of an attached
// trace-driven cache simulation ("nest.simworkers"); like WithLayout it is
// a carried dimension, not an executor behavior.
func WithSimWorkers(n int) RunOption {
	return func(o *runOptions) { o.cfg.SimWorkers = n }
}

// Run executes exec under the given options and returns the merged result.
// With no options it is Exec.Run(Original()) — sequential, recursive
// engine, no telemetry — and each option moves exactly one axis:
//
//	res, err := twist.Run(exec,
//		twist.WithSchedule(twist.MustParseSchedule("stripmine(64)∘twist(flagged)")),
//		twist.WithEngine(twist.EngineIterative),
//		twist.WithWorkers(8),
//	)
//
// Sequential runs (the default, and any WithWorkers(n <= 0)) report
// Workers = 1 and Tasks = 1; parallel runs report the §7.3 decomposition's
// task and steal counts. Stats are bit-identical across engines, and — for
// a fixed spawn depth — across worker counts and executors.
func Run(exec *Exec, opts ...RunOption) (RunResult, error) {
	if exec == nil {
		return RunResult{}, fmt.Errorf("twist: Run on a nil Exec")
	}
	var o runOptions
	o.cfg.Variant = Original()
	o.cfg.Stealing = true
	for _, opt := range opts {
		opt(&o)
	}
	if o.flagsOn {
		exec.Flags = o.flags
	}
	if o.subOn {
		exec.SubtreeTruncation = o.subtree
	}
	if o.parallel {
		return exec.RunWith(o.cfg)
	}
	return runSequential(exec, o.cfg)
}

// MustParseSchedule is ParseSchedule that panics on error, for
// statically-known expressions.
func MustParseSchedule(expr string) Schedule {
	s, err := ParseSchedule(expr)
	if err != nil {
		panic(err)
	}
	return s
}

// runSequential is Run's single-goroutine path: the exact behavior of the
// legacy Exec.RunContext (bit-identical Stats — no task decomposition, so
// flag state spans the whole space), wrapped in the RunResult shape and the
// telemetry contract of the parallel executor so callers see one uniform
// surface.
func runSequential(exec *Exec, cfg nest.RunConfig) (RunResult, error) {
	exec.Engine = cfg.Engine
	done := obs.Span(cfg.Recorder, "nest.run")
	err := exec.RunContext(cfg.Ctx, cfg.Variant)
	done()
	res := RunResult{
		Stats:     exec.Stats,
		PerWorker: []Stats{exec.Stats},
		Workers:   1,
		Tasks:     1,
		EngineOps: exec.EngineOps(),
	}
	if rec := cfg.Recorder; rec != nil {
		rec.Count("nest.tasks", res.Tasks)
		rec.Count("nest.steals", 0)
		rec.Count("nest.workers", 1)
		rec.Count("nest.engine.ops", res.EngineOps)
		rec.Count("nest.engine."+cfg.Engine.String(), 1)
		if cfg.SimWorkers > 0 {
			rec.Count("nest.simworkers", int64(cfg.SimWorkers))
		}
		if cfg.Layout != "" {
			rec.Count("nest.layout."+cfg.Layout, 1)
		}
		res.Stats.Record(rec, "nest")
	}
	return res, err
}
