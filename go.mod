module twist

go 1.22
