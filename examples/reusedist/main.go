// reusedist reproduces the paper's §3.2 reuse-distance analysis: it runs the
// tree join under each schedule, feeds the node-access trace through an
// exact LRU stack-distance analyzer, and prints the Fig 5 CDF plus the
// paper's exact node-5 example sequences.
//
// Run with:
//
//	go run ./examples/reusedist [-n 1024]
package main

import (
	"flag"
	"fmt"
	"strings"

	"twist"
	"twist/internal/memsim"
	"twist/internal/nest"
	"twist/internal/workloads"
)

func main() {
	n := flag.Int("n", 1024, "nodes per tree (the paper's Fig 5 uses 1024)")
	flag.Parse()

	// First, the paper's exact example: accesses to inner-tree node 5 on
	// the 7-node trees (§3.2).
	fmt.Println("paper example (7-node trees), reuse distances of inner node 5:")
	for _, v := range []nest.Variant{nest.Original(), nest.Twisted()} {
		fmt.Printf("  %-13s %s\n", v, strings.Join(node5Distances(v), " "))
	}
	fmt.Println()

	// Then the Fig 5 CDF at full size.
	fmt.Printf("Fig 5 CDF, tree join with %d-node trees:\n", *n)
	fmt.Printf("  %-8s %-10s %s\n", "r", "original", "twisted")
	orig := histogram(*n, nest.Original())
	tw := histogram(*n, nest.Twisted())
	for r := 1; r <= 4*(*n); r *= 2 {
		fmt.Printf("  %-8d %-10.4f %.4f\n", r, orig.CDF(r), tw.CDF(r))
	}
	fmt.Printf("mean finite reuse distance: original %.1f, twisted %.1f\n",
		orig.Mean(), tw.Mean())
}

// node5Distances replays the 7x7 example and formats the reuse distances of
// accesses to inner node 5 (preorder index 4), ∞ for the first.
func node5Distances(v nest.Variant) []string {
	in := workloads.TreeJoin(7, 1)
	ra := memsim.NewReuseAnalyzer()
	var out []string
	in.Reset()
	target := memsim.Addr(2<<30) + 4*64 // inner-node region, preorder index 4
	s := in.TracedSpec(func(a memsim.Addr) {
		d := ra.Access(a)
		if a != target {
			return
		}
		if d == memsim.Infinite {
			out = append(out, "∞")
		} else {
			out = append(out, fmt.Sprint(d))
		}
	})
	if _, err := twist.Run(nest.MustNew(s), twist.WithVariant(v)); err != nil {
		panic(err)
	}
	return out
}

func histogram(n int, v nest.Variant) *memsim.Histogram {
	in := workloads.TreeJoin(n, 1)
	ra := memsim.NewReuseAnalyzer()
	h := memsim.NewHistogram()
	in.Reset()
	s := in.TracedSpec(func(a memsim.Addr) { h.Add(ra.Access(a)) })
	if _, err := twist.Run(nest.MustNew(s), twist.WithVariant(v)); err != nil {
		panic(err)
	}
	return h
}
