// parallel demonstrates §7.3: the outer recursion's independence (the same
// property that makes twisting sound) makes it task-parallel — spawn one
// task per outer subtree, then apply twisting *within* each task once enough
// parallelism exists. The example runs a point-correlation count under
// sequential twisting and parallel-then-twisted execution and verifies the
// counts agree.
//
// Run with:
//
//	go run ./examples/parallel [-n 20000] [-depth 3]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
	"twist/internal/tree"
)

func main() {
	n := flag.Int("n", 20000, "number of points")
	depth := flag.Int("depth", 3, "outer-tree depth at which tasks are spawned (2^depth tasks)")
	radius := flag.Float64("r", 0.2, "correlation radius")
	flag.Parse()

	pts := geom.Generate(geom.Uniform, *n, 5)
	ix := kdtree.MustBuild(pts, 8)
	r2 := *radius * *radius

	// A concurrency-safe PC: the pair count is an atomic (commutative
	// reduction), and Score state is read-only — the outer recursion is
	// parallel in the §3.3 sense.
	var count atomic.Int64
	spec := nest.Spec{
		Outer:      ix.Topo,
		Inner:      ix.Topo,
		Hereditary: true,
		TruncInner2: func(o, i tree.NodeID) bool {
			return ix.MinDist2(o, ix, i) > r2
		},
		Work: func(o, i tree.NodeID) {
			if !ix.Topo.IsLeaf(o) || !ix.Topo.IsLeaf(i) {
				return
			}
			var local int64
			for _, q := range ix.NodePoints(o) {
				for _, r := range ix.NodePoints(i) {
					if geom.Dist2(q, r) <= r2 {
						local++
					}
				}
			}
			count.Add(local)
		},
	}

	fmt.Printf("point correlation, %d points, r=%.2f, %d cores\n\n",
		*n, *radius, runtime.NumCPU())

	count.Store(0)
	t0 := time.Now()
	e := nest.MustNew(spec)
	e.Run(nest.Twisted())
	seq := time.Since(t0)
	want := count.Load()
	fmt.Printf("sequential twisted:          %8v  count=%d\n", seq.Round(time.Millisecond), want)

	count.Store(0)
	t0 = time.Now()
	stats, err := nest.RunParallel(spec, nest.Twisted(), *depth, 0, nil)
	if err != nil {
		panic(err)
	}
	par := time.Since(t0)
	fmt.Printf("parallel (%2d tasks) twisted: %8v  count=%d  speedup=%.2fx\n",
		len(stats)-1, par.Round(time.Millisecond), count.Load(),
		float64(seq)/float64(par))

	if count.Load() != want {
		panic("parallel execution changed the result")
	}
	fmt.Println("\nresults agree; per-task twisting preserves each task's locality")
}
