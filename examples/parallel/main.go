// parallel demonstrates §7.3: the outer recursion's independence (the same
// property that makes twisting sound) makes it task-parallel — split the
// outer tree into subtree tasks, then apply twisting *within* each task once
// enough parallelism exists. The example runs a point-correlation count
// under sequential twisting and under the work-stealing executor and
// verifies the counts agree and the merged Stats are identical across
// worker counts.
//
// Run with:
//
//	go run ./examples/parallel [-n 20000] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"twist"
	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
	"twist/internal/tree"
)

func main() {
	n := flag.Int("n", 20000, "number of points")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	radius := flag.Float64("r", 0.2, "correlation radius")
	flag.Parse()

	pts := geom.Generate(geom.Uniform, *n, 5)
	ix := kdtree.MustBuild(pts, 8)
	r2 := *radius * *radius

	// A concurrency-safe PC: the pair count is an atomic (commutative
	// reduction), and Score state is read-only — the outer recursion is
	// parallel in the §3.3 sense.
	var count atomic.Int64
	spec := nest.Spec{
		Outer:      ix.Topo,
		Inner:      ix.Topo,
		Hereditary: true,
		TruncInner2: func(o, i tree.NodeID) bool {
			return ix.MinDist2(o, ix, i) > r2
		},
		Work: func(o, i tree.NodeID) {
			if !ix.Topo.IsLeaf(o) || !ix.Topo.IsLeaf(i) {
				return
			}
			var local int64
			for _, q := range ix.NodePoints(o) {
				for _, r := range ix.NodePoints(i) {
					if geom.Dist2(q, r) <= r2 {
						local++
					}
				}
			}
			count.Add(local)
		},
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("point correlation, %d points, r=%.2f, %d workers\n\n", *n, *radius, w)

	count.Store(0)
	t0 := time.Now()
	e := nest.MustNew(spec)
	if _, err := twist.Run(e, twist.WithVariant(nest.Twisted())); err != nil {
		panic(err)
	}
	seq := time.Since(t0)
	want := count.Load()
	fmt.Printf("sequential twisted:        %8v  count=%d\n", seq.Round(time.Millisecond), want)

	// One worker first: the decomposition depends only on the spawn depth,
	// so this run's merged Stats are the determinism baseline.
	count.Store(0)
	base, err := twist.Run(e, twist.WithVariant(nest.Twisted()), twist.WithWorkers(1))
	if err != nil {
		panic(err)
	}

	count.Store(0)
	t0 = time.Now()
	res, err := twist.Run(e, twist.WithVariant(nest.Twisted()), twist.WithWorkers(w))
	if err != nil {
		panic(err)
	}
	par := time.Since(t0)
	fmt.Printf("stealing (%2d workers):     %8v  count=%d  speedup=%.2fx  tasks=%d steals=%d\n",
		res.Workers, par.Round(time.Millisecond), count.Load(),
		float64(seq)/float64(par), res.Tasks, res.Steals)

	if count.Load() != want {
		panic("parallel execution changed the result")
	}
	if res.Stats != base.Stats {
		panic("merged stats differ across worker counts")
	}
	fmt.Println("\ncounts agree and merged stats are identical across worker counts;")
	fmt.Println("per-task twisting preserves each task's locality")
}
