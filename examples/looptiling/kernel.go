package main

// The kernel state lives at package level so the loop body is free of local
// captures (the front-end embeds the body verbatim into the generated
// recursion, which cannot close over main's locals).
var (
	xs  []float64
	ys  []float64
	acc []float64
)

// The paper's own motivating loop (§1.1, §3.2): a vector outer-product
// accumulation. Each body iteration touches xs[o], ys[i], acc[o] — one
// vector gets perfect locality, the other is streamed in full per outer
// iteration, unless the schedule is tiled. cmd/twist -from-loops converts
// this nest to the recursion template (kernel_template.go) and twisting the
// result is §7.2's parameterless multi-level loop tiling
// (kernel_twisted.go).

//twist:loops name=outerProduct leafrun=8
func outerProductLoops(n int) {
	for o := 0; o < n; o++ {
		for i := 0; i < n; i++ {
			acc[o] += xs[o] * ys[i]
		}
	}
}
