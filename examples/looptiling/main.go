// looptiling demonstrates §7.2 through the public API: a doubly-nested loop
// is recast as a nested recursion (twist.NewLoopNest) and recursion twisting
// then acts as automatic multi-level loop tiling — "a schedule that fits all
// levels of cache without knowing the number and sizes of caches".
//
// The kernel is a vector outer product accumulation, the paper's own
// motivating loop example (§1.1, §3.2): one vector gets perfect locality,
// the other is streamed in full per outer iteration — unless the schedule is
// tiled.
//
// Run with:
//
//	go run ./examples/looptiling [-n 4096]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"twist"
)

func main() {
	n := flag.Int("n", 4096, "vector length (the loop nest is n x n)")
	flag.Parse()

	x := make([]float64, *n)
	y := make([]float64, *n)
	for k := range x {
		x[k] = float64(k%13) / 7
		y[k] = float64(k%17) / 5
	}

	ln, err := twist.NewLoopNest(*n, *n, 8)
	if err != nil {
		panic(err)
	}

	// acc[o] accumulates row sums of the outer product x ⊗ y; each loop body
	// touches x[o], y[i], acc[o] — the locality profile of the paper's
	// vector outer product.
	acc := make([]float64, *n)
	body := func(o, i int) { acc[o] += x[o] * y[i] }

	for _, v := range []twist.Variant{twist.Original(), twist.Twisted(), twist.TwistedCutoff(256)} {
		for k := range acc {
			acc[k] = 0
		}
		runtime.GC()
		t0 := time.Now()
		e := ln.Run(body, v)
		dt := time.Since(t0)
		var sum float64
		for _, a := range acc {
			sum += a
		}
		fmt.Printf("%-16v sum=%-18.6f twists=%-8d time=%v\n",
			v, sum, e.Stats.Twists, dt.Round(time.Microsecond))
	}

	fmt.Println("\nall schedules compute the same sums; the twisted order walks the")
	fmt.Println("n x n space in nested tiles, so y stays cache-resident at every level")
	fmt.Println("(compare the original's full sweep of y per outer iteration).")
}
