// looptiling demonstrates §7.2 through the loop front-end: the plain loop
// nest in kernel.go is converted to a nested recursion by cmd/twist
// -from-loops (committed as kernel_template.go), and recursion twisting of
// that template (kernel_twisted.go) then acts as automatic multi-level loop
// tiling — "a schedule that fits all levels of cache without knowing the
// number and sizes of caches".
//
// The kernel is a vector outer product accumulation, the paper's own
// motivating loop example (§1.1, §3.2): one vector gets perfect locality,
// the other is streamed in full per outer iteration — unless the schedule is
// tiled.
//
// Regenerate the committed files with:
//
//	go run ./cmd/twist -in examples/looptiling/kernel.go -from-loops
//
// Run with:
//
//	go run ./examples/looptiling [-n 4096]
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"time"
)

func main() {
	n := flag.Int("n", 4096, "vector length (the loop nest is n x n)")
	flag.Parse()

	xs = make([]float64, *n)
	ys = make([]float64, *n)
	acc = make([]float64, *n)
	for k := range xs {
		xs[k] = float64(k%13) / 7
		ys[k] = float64(k%17) / 5
	}

	run := func(label string, kernel func()) float64 {
		for k := range acc {
			acc[k] = 0
		}
		runtime.GC()
		t0 := time.Now()
		kernel()
		dt := time.Since(t0)
		var sum float64
		for _, a := range acc {
			sum += a
		}
		fmt.Printf("%-22s sum=%-18.6f time=%v\n", label, sum, dt.Round(time.Microsecond))
		return sum
	}

	want := run("source loop", func() { outerProductLoops(*n) })
	checks := []struct {
		label  string
		kernel func()
	}{
		{"original (recursion)", func() { outerProductRun(*n) }},
		{"twisted", func() {
			o, i := outerProductNest(*n)
			outerProductOuterTwisted(o, i)
		}},
		{"twisted-cutoff(256)", func() {
			o, i := outerProductNest(*n)
			outerProductOuterTwistedCutoff(o, i, 256)
		}},
	}
	for _, c := range checks {
		if got := run(c.label, c.kernel); math.Abs(got-want) > 1e-6*math.Abs(want) {
			fmt.Printf("FAIL: %s computed %v, source loop computed %v\n", c.label, got, want)
			return
		}
	}

	fmt.Println("\nall schedules compute the source loop's sums; the twisted order walks")
	fmt.Println("the n x n space in nested tiles, so ys stays cache-resident at every")
	fmt.Println("level (compare the original's full sweep of ys per outer iteration).")
}
