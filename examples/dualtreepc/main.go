// dualtreepc runs dual-tree 2-point correlation — the paper's PC benchmark —
// under every schedule, demonstrating how recursion twisting handles an
// irregular, outer-dependent truncation (the Score pruning of the dual-tree
// framework, §4) while preserving the exact result.
//
// Run with:
//
//	go run ./examples/dualtreepc [-n 20000] [-r 0.3]
package main

import (
	"flag"
	"fmt"
	"time"

	"twist"
	"twist/internal/dualtree"
	"twist/internal/geom"
	"twist/internal/kdtree"
	"twist/internal/nest"
)

func main() {
	n := flag.Int("n", 20000, "number of points")
	r := flag.Float64("r", 0.3, "correlation radius")
	flag.Parse()

	pts := geom.Generate(geom.Uniform, *n, 7)
	ix := kdtree.MustBuild(pts, 8)
	pc := dualtree.NewPC(ix, ix, *r)
	e := nest.MustNew(pc.Spec())

	fmt.Printf("point correlation: %d points, radius %.2f, kd-tree with %d nodes\n\n",
		*n, *r, ix.Topo.Len())
	fmt.Printf("%-16s %-14s %-14s %-12s %-10s %s\n",
		"schedule", "pairs<=r", "iterations", "pair ops", "twists", "time")

	var want int64 = -1
	for _, v := range []nest.Variant{
		nest.Original(), nest.Interchanged(), nest.Twisted(), nest.TwistedCutoff(256),
	} {
		pc.Reset()
		t0 := time.Now()
		res, err := twist.Run(e, twist.WithVariant(v))
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		fmt.Printf("%-16v %-14d %-14d %-12d %-10d %v\n",
			v, pc.Count, res.Stats.Iterations, pc.PairOps, res.Stats.Twists, dt.Round(time.Millisecond))
		if want < 0 {
			want = pc.Count
		} else if pc.Count != want {
			panic(fmt.Sprintf("%v disagrees: %d != %d", v, pc.Count, want))
		}
	}

	fmt.Println("\nall schedules agree; note interchange's iteration blow-up (it cannot")
	fmt.Println("truncate recursion, §4.2) while twisting stays close to the original.")
}
