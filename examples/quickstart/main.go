// Quickstart: schedule a nested recursion (the tree join of the paper's
// Fig 1a) under the original, interchanged, and twisted schedules using the
// public twist API, and render the resulting iteration-space orders.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"twist"
)

func main() {
	// The paper's running example: two perfect 7-node trees.
	outer := twist.NewPerfectTree(2)
	inner := twist.NewPerfectTree(2)

	// The "work" of the join: here we just sum a function of the two node
	// ids. Any pure-per-pair computation keeps every schedule sound.
	var sum int64
	spec := twist.Spec{
		Outer: outer,
		Inner: inner,
		Work: func(o, i twist.NodeID) {
			sum += int64(o) * 7 * int64(i)
		},
	}

	exec := twist.MustNew(spec)
	reference, _ := twist.Record(spec, twist.Original())

	for _, v := range []twist.Variant{twist.Original(), twist.Interchanged(), twist.Twisted()} {
		sum = 0
		res, err := twist.Run(exec, twist.WithVariant(v))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-13s sum=%-8d twists=%-3d\n", v, sum, res.Stats.Twists)

		pairs, err := twist.Record(spec, v)
		if err != nil {
			panic(err)
		}
		if err := twist.CheckSchedule(reference, pairs); err != nil {
			panic(fmt.Sprintf("%v schedule unsound: %v", v, err))
		}
		fmt.Print(twist.RenderGrid(outer, inner, pairs))
		fmt.Println()
	}

	// At larger scale, the twisted schedule visits exactly the same pairs —
	// just in a cache-friendlier order.
	big := twist.Spec{
		Outer: twist.NewBalancedTree(1 << 10),
		Inner: twist.NewBalancedTree(1 << 10),
		Work:  func(o, i twist.NodeID) {},
	}
	res, err := twist.Run(twist.MustNew(big), twist.WithVariant(twist.Twisted()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("1024x1024 twisted: %d iterations, %d orientation switches\n",
		res.Stats.Work, res.Stats.Twists)
}
