// matmul demonstrates the paper's §7.2 observation: translating the two
// loops of a matrix multiplication into Cilk-style divide-and-conquer
// recursions and applying recursion twisting automatically yields a
// cache-oblivious-like schedule — multi-level tiling with no tile-size
// parameters.
//
// Run with:
//
//	go run ./examples/matmul [-n 512]
package main

import (
	"flag"
	"fmt"
	"time"

	"twist"
	"twist/internal/nest"
	"twist/internal/workloads"
)

func main() {
	n := flag.Int("n", 512, "matrix dimension")
	flag.Parse()

	in := workloads.MatMul(*n, 3)
	e := nest.MustNew(in.Spec)

	fmt.Printf("%s\n\n", in.Description)
	fmt.Printf("%-16s %-18s %-10s %s\n", "schedule", "checksum", "twists", "time")

	var want uint64
	for k, v := range []nest.Variant{nest.Original(), nest.Twisted(), nest.TwistedCutoff(64)} {
		in.Reset()
		t0 := time.Now()
		res, err := twist.Run(e, twist.WithVariant(v))
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		sum := in.Checksum()
		fmt.Printf("%-16v %-18x %-10d %v\n", v, sum, res.Stats.Twists, dt.Round(time.Millisecond))
		if k == 0 {
			want = sum
		} else if sum != want {
			panic(fmt.Sprintf("%v computed a different product", v))
		}
	}

	fmt.Println("\nthe twisted schedule interleaves row and column ranges recursively,")
	fmt.Println("so blocks of A and B stay resident across dot products — multi-level")
	fmt.Println("tiling with no cache parameters (paper §7.2).")
}
