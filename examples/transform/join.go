package main

// visitJoin is the work body of the join template; main.go points it at a
// recording function.
var visitJoin func(o, i *Node)

// The tree join of paper Fig 1(a), annotated for cmd/twist. The template is
// regular: the inner truncation depends only on the inner index.

//twist:outer
func JoinOuter(o *Node, i *Node) {
	if o == nil {
		return
	}
	JoinInner(o, i)
	JoinOuter(o.Left, i)
	JoinOuter(o.Right, i)
}

//twist:inner
func JoinInner(o *Node, i *Node) {
	if i == nil {
		return
	}
	visitJoin(o, i)
	JoinInner(o, i.Left)
	JoinInner(o, i.Right)
}
