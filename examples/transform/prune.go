package main

// visitPrune is the work body of the pruned template.
var visitPrune func(o, i *Node)

// A nested recursion with *irregular* truncation (paper §4): the inner
// recursion is cut off based on both indices (`o.Val > i.Val`), so the
// synthesized interchange/twisting code must track truncation flags
// (Fig 6b). cmd/twist detects this automatically.

//twist:outer
func PruneOuter(o *Node, i *Node) {
	if o == nil {
		return
	}
	PruneInner(o, i)
	PruneOuter(o.Left, i)
	PruneOuter(o.Right, i)
}

//twist:inner
func PruneInner(o *Node, i *Node) {
	if i == nil || o.Val > i.Val {
		return
	}
	visitPrune(o, i)
	PruneInner(o, i.Left)
	PruneInner(o, i.Right)
}
