// Package main is the input corpus and runtime validation harness for
// cmd/twist, the source-to-source transformer of paper §5. join.go and
// prune.go hold annotated nested recursions; join_twisted.go and
// prune_twisted.go are the tool's output (checked in; regenerated and
// verified byte-identical by internal/transform's tests); main.go runs the
// original and synthesized schedules against each other.
package main

// Node is a plain pointer-based binary tree node — unlike the arena engine
// in internal/nest, the transformed source operates on ordinary Go data
// structures, as the paper's tool does on ordinary C++.
type Node struct {
	Left, Right *Node
	Size        int   // subtree size, maintained at build time
	Val         int64 // payload
	trunc       bool  // truncation flag used by synthesized Fig 6(b) code
}

// subtreeSize is the size helper required by the twisting transformation
// (§5: "a method can be called to determine the size of the current
// sub-recursion").
func subtreeSize(n *Node) int {
	if n == nil {
		return 0
	}
	return n.Size
}

// truncFlag and setTruncFlag are the truncation-flag accessors used by the
// synthesized irregular-truncation code.
func truncFlag(n *Node) bool       { return n.trunc }
func setTruncFlag(n *Node, v bool) { n.trunc = v }

// build constructs a balanced tree over n nodes with deterministic payloads.
func build(n int, seed int64) *Node {
	if n == 0 {
		return nil
	}
	l := (n - 1) / 2
	root := &Node{Size: n, Val: seed % 1000}
	root.Left = build(l, seed*6364136223846793005+1442695040888963407)
	root.Right = build(n-1-l, seed*2862933555777941757+3037000493)
	return root
}
