// The validation harness: runs the original, interchanged, and twisted
// schedules produced by cmd/twist against each other and checks the §3.3
// soundness conditions at runtime — the executed iteration sets are equal
// and every column (fixed outer node) keeps its iteration order.
//
// The loop-sourced half of the corpus (loopjoin.go, looptri.go) enters the
// pipeline through the loop front-end: the committed *_template.go and
// *_twisted.go files are cmd/twist -from-loops output, and the harness
// additionally checks the stricter §7.2 property that the Original schedule
// reproduces the source loop's iteration order exactly, element for element.
//
// Regenerate the *_twisted.go files with:
//
//	go run ./cmd/twist -in examples/transform/join.go
//	go run ./cmd/twist -in examples/transform/prune.go
//	go run ./cmd/twist -in examples/transform/join.go \
//	    -out examples/transform/join_inline.go \
//	    -schedules 'inline(2)∘twist(flagged)'
//	go run ./cmd/twist -in examples/transform/loopjoin.go -from-loops
//	go run ./cmd/twist -in examples/transform/looptri.go -from-loops
//
// Run with:
//
//	go run ./examples/transform
package main

import (
	"fmt"
	"os"
)

type visit struct{ o, i *Node }

// record returns a visit-capturing work function and the captured slice.
func record(dst *[]visit) func(o, i *Node) {
	return func(o, i *Node) { *dst = append(*dst, visit{o, i}) }
}

// checkSchedules verifies set-equality and per-column order preservation.
func checkSchedules(name string, ref, got []visit) {
	refCount := map[visit]int{}
	for _, v := range ref {
		refCount[v]++
	}
	for _, v := range got {
		refCount[v]--
	}
	for v, c := range refCount {
		if c != 0 {
			fmt.Fprintf(os.Stderr, "%s: iteration (%p,%p) count differs by %d\n", name, v.o, v.i, -c)
			os.Exit(1)
		}
	}
	refCols := map[*Node][]*Node{}
	for _, v := range ref {
		refCols[v.o] = append(refCols[v.o], v.i)
	}
	gotCols := map[*Node][]*Node{}
	for _, v := range got {
		gotCols[v.o] = append(gotCols[v.o], v.i)
	}
	for o, rs := range refCols {
		gs := gotCols[o]
		for k := range rs {
			if gs[k] != rs[k] {
				fmt.Fprintf(os.Stderr, "%s: column order violated\n", name)
				os.Exit(1)
			}
		}
	}
}

// ivisit is one executed iteration of a loop-sourced nest.
type ivisit struct{ o, i int }

// irecord returns a visit-capturing work function over integer indices.
func irecord(dst *[]ivisit) func(o, i int) {
	return func(o, i int) { *dst = append(*dst, ivisit{o, i}) }
}

// checkExactOrder verifies the §7.2 front-end contract: the generated
// Original schedule replays the source loop byte for byte.
func checkExactOrder(name string, src, gen []ivisit) {
	if len(src) != len(gen) {
		fmt.Fprintf(os.Stderr, "%s: source loop ran %d iterations, generated Original ran %d\n",
			name, len(src), len(gen))
		os.Exit(1)
	}
	for k := range src {
		if src[k] != gen[k] {
			fmt.Fprintf(os.Stderr, "%s: iteration %d differs: source (%d,%d), generated (%d,%d)\n",
				name, k, src[k].o, src[k].i, gen[k].o, gen[k].i)
			os.Exit(1)
		}
	}
}

// checkLoopSchedules verifies set-equality and per-column order preservation
// for the integer-indexed loop corpus.
func checkLoopSchedules(name string, ref, got []ivisit) {
	refCount := map[ivisit]int{}
	for _, v := range ref {
		refCount[v]++
	}
	for _, v := range got {
		refCount[v]--
	}
	for v, c := range refCount {
		if c != 0 {
			fmt.Fprintf(os.Stderr, "%s: iteration (%d,%d) count differs by %d\n", name, v.o, v.i, -c)
			os.Exit(1)
		}
	}
	refCols := map[int][]int{}
	for _, v := range ref {
		refCols[v.o] = append(refCols[v.o], v.i)
	}
	gotCols := map[int][]int{}
	for _, v := range got {
		gotCols[v.o] = append(gotCols[v.o], v.i)
	}
	for o, rs := range refCols {
		gs := gotCols[o]
		for k := range rs {
			if gs[k] != rs[k] {
				fmt.Fprintf(os.Stderr, "%s: column order violated\n", name)
				os.Exit(1)
			}
		}
	}
}

func main() {
	outer := build(127, 3)
	inner := build(127, 4)

	// --- regular template: the tree join -------------------------------
	var ref, got []visit
	visitJoin = record(&ref)
	JoinOuter(outer, inner)

	got = got[:0]
	visitJoin = record(&got)
	JoinOuterSwapped(outer, inner)
	checkSchedules("join/interchanged", ref, got)

	got = nil
	visitJoin = record(&got)
	JoinOuterTwisted(outer, inner)
	checkSchedules("join/twisted", ref, got)

	got = nil
	visitJoin = record(&got)
	JoinOuterTwistedCutoff(outer, inner, 16)
	checkSchedules("join/twisted-cutoff", ref, got)

	// inline(2)∘twist(flagged): the schedule-algebra composition — the
	// twisted order with the inner recursion unrolled two levels per call.
	// Inlining reshapes the code, not the schedule, so the same soundness
	// conditions must hold.
	got = nil
	visitJoin = record(&got)
	JoinOuterTwistedInline2(outer, inner)
	checkSchedules("join/inline(2)∘twist(flagged)", ref, got)
	fmt.Printf("join:  %d iterations agree across original, interchanged, twisted, cutoff, inlined\n", len(ref))

	// --- irregular template: value-pruned join --------------------------
	ref = nil
	visitPrune = record(&ref)
	PruneOuter(outer, inner)

	got = nil
	visitPrune = record(&got)
	PruneOuterSwapped(outer, inner)
	checkSchedules("prune/interchanged", ref, got)

	got = nil
	visitPrune = record(&got)
	PruneOuterTwisted(outer, inner)
	checkSchedules("prune/twisted", ref, got)

	got = nil
	visitPrune = record(&got)
	PruneOuterTwistedCutoff(outer, inner, 16)
	checkSchedules("prune/twisted-cutoff", ref, got)
	full := 127 * 127
	fmt.Printf("prune: %d of %d iterations (irregular truncation) agree across schedules\n",
		len(ref), full)

	// --- loop front-end, regular nest: rectangular loopjoin -------------
	const ln, lm = 37, 23
	var lsrc, lref, lgot []ivisit
	visitLoopJoin = irecord(&lsrc)
	loopJoinLoops(ln, lm)

	visitLoopJoin = irecord(&lref)
	loopJoinRun(ln, lm)
	checkExactOrder("loopjoin/original", lsrc, lref)

	lo, li := loopJoinNest(ln, lm)
	visitLoopJoin = irecord(&lgot)
	loopJoinOuterSwapped(lo, li)
	checkLoopSchedules("loopjoin/interchanged", lref, lgot)

	lgot = nil
	lo, li = loopJoinNest(ln, lm)
	visitLoopJoin = irecord(&lgot)
	loopJoinOuterTwisted(lo, li)
	checkLoopSchedules("loopjoin/twisted", lref, lgot)

	lgot = nil
	lo, li = loopJoinNest(ln, lm)
	visitLoopJoin = irecord(&lgot)
	loopJoinOuterTwistedCutoff(lo, li, 8)
	checkLoopSchedules("loopjoin/twisted-cutoff", lref, lgot)
	fmt.Printf("loopjoin: %d loop iterations replayed exactly by the generated Original,\n", len(lsrc))
	fmt.Println("          interchanged/twisted/cutoff permutation-equivalent")

	// --- loop front-end, irregular nest: triangular looptri -------------
	lsrc, lref = nil, nil
	visitLoopTri = irecord(&lsrc)
	loopTriLoops(ln)

	visitLoopTri = irecord(&lref)
	loopTriRun(ln)
	checkExactOrder("looptri/original", lsrc, lref)

	lgot = nil
	to, ti := loopTriNest(ln)
	visitLoopTri = irecord(&lgot)
	loopTriOuterSwapped(to, ti)
	checkLoopSchedules("looptri/interchanged", lref, lgot)

	lgot = nil
	to, ti = loopTriNest(ln)
	visitLoopTri = irecord(&lgot)
	loopTriOuterTwisted(to, ti)
	checkLoopSchedules("looptri/twisted", lref, lgot)

	lgot = nil
	to, ti = loopTriNest(ln)
	visitLoopTri = irecord(&lgot)
	loopTriOuterTwistedCutoff(to, ti, 4)
	checkLoopSchedules("looptri/twisted-cutoff", lref, lgot)
	fmt.Printf("looptri:  %d of %d iterations (triangular, truncation-flagged) agree across schedules\n",
		len(lref), ln*ln)
	fmt.Println("generated schedules are sound on this input")
}
