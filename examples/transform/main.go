// The validation harness: runs the original, interchanged, and twisted
// schedules produced by cmd/twist against each other and checks the §3.3
// soundness conditions at runtime — the executed iteration sets are equal
// and every column (fixed outer node) keeps its iteration order.
//
// Regenerate the *_twisted.go files with:
//
//	go run ./cmd/twist -in examples/transform/join.go
//	go run ./cmd/twist -in examples/transform/prune.go
//	go run ./cmd/twist -in examples/transform/join.go \
//	    -out examples/transform/join_inline.go \
//	    -schedules 'inline(2)∘twist(flagged)'
//
// Run with:
//
//	go run ./examples/transform
package main

import (
	"fmt"
	"os"
)

type visit struct{ o, i *Node }

// record returns a visit-capturing work function and the captured slice.
func record(dst *[]visit) func(o, i *Node) {
	return func(o, i *Node) { *dst = append(*dst, visit{o, i}) }
}

// checkSchedules verifies set-equality and per-column order preservation.
func checkSchedules(name string, ref, got []visit) {
	refCount := map[visit]int{}
	for _, v := range ref {
		refCount[v]++
	}
	for _, v := range got {
		refCount[v]--
	}
	for v, c := range refCount {
		if c != 0 {
			fmt.Fprintf(os.Stderr, "%s: iteration (%p,%p) count differs by %d\n", name, v.o, v.i, -c)
			os.Exit(1)
		}
	}
	refCols := map[*Node][]*Node{}
	for _, v := range ref {
		refCols[v.o] = append(refCols[v.o], v.i)
	}
	gotCols := map[*Node][]*Node{}
	for _, v := range got {
		gotCols[v.o] = append(gotCols[v.o], v.i)
	}
	for o, rs := range refCols {
		gs := gotCols[o]
		for k := range rs {
			if gs[k] != rs[k] {
				fmt.Fprintf(os.Stderr, "%s: column order violated\n", name)
				os.Exit(1)
			}
		}
	}
}

func main() {
	outer := build(127, 3)
	inner := build(127, 4)

	// --- regular template: the tree join -------------------------------
	var ref, got []visit
	visitJoin = record(&ref)
	JoinOuter(outer, inner)

	got = got[:0]
	visitJoin = record(&got)
	JoinOuterSwapped(outer, inner)
	checkSchedules("join/interchanged", ref, got)

	got = nil
	visitJoin = record(&got)
	JoinOuterTwisted(outer, inner)
	checkSchedules("join/twisted", ref, got)

	got = nil
	visitJoin = record(&got)
	JoinOuterTwistedCutoff(outer, inner, 16)
	checkSchedules("join/twisted-cutoff", ref, got)

	// inline(2)∘twist(flagged): the schedule-algebra composition — the
	// twisted order with the inner recursion unrolled two levels per call.
	// Inlining reshapes the code, not the schedule, so the same soundness
	// conditions must hold.
	got = nil
	visitJoin = record(&got)
	JoinOuterTwistedInline2(outer, inner)
	checkSchedules("join/inline(2)∘twist(flagged)", ref, got)
	fmt.Printf("join:  %d iterations agree across original, interchanged, twisted, cutoff, inlined\n", len(ref))

	// --- irregular template: value-pruned join --------------------------
	ref = nil
	visitPrune = record(&ref)
	PruneOuter(outer, inner)

	got = nil
	visitPrune = record(&got)
	PruneOuterSwapped(outer, inner)
	checkSchedules("prune/interchanged", ref, got)

	got = nil
	visitPrune = record(&got)
	PruneOuterTwisted(outer, inner)
	checkSchedules("prune/twisted", ref, got)

	got = nil
	visitPrune = record(&got)
	PruneOuterTwistedCutoff(outer, inner, 16)
	checkSchedules("prune/twisted-cutoff", ref, got)
	full := 127 * 127
	fmt.Printf("prune: %d of %d iterations (irregular truncation) agree across schedules\n",
		len(ref), full)
	fmt.Println("generated schedules are sound on this input")
}
