package main

// visitLoopJoin is the work body of the loop-sourced rectangular nest;
// main.go points it at a recording function.
var visitLoopJoin func(o, i int)

// A plain rectangular loop nest for the loop front-end (§7.2): cmd/twist
// -from-loops converts it to the Fig 2 recursion template
// (loopjoin_template.go) and generates schedules from that template
// (loopjoin_twisted.go) in one invocation — twisting as parameterless
// multi-level loop tiling.

//twist:loops name=loopJoin leafrun=4
func loopJoinLoops(n, m int) {
	for o := 0; o < n; o++ {
		for i := 0; i < m; i++ {
			visitLoopJoin(o, i)
		}
	}
}
