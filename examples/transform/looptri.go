package main

// visitLoopTri is the work body of the loop-sourced triangular nest;
// main.go points it at a recording function.
var visitLoopTri func(o, i int)

// A triangular loop nest: the inner bound depends on the outer index, so the
// front-end marks the nest irregular and the generated template carries
// Fig 6(b) truncation-flag accessors (loopTriTrunc/loopTriSetTrunc) that the
// twisted schedules use to stay sound under interleaving.

//twist:loops name=loopTri leafrun=2
func loopTriLoops(n int) {
	for o := 0; o < n; o++ {
		for i := 0; i < o; i++ {
			visitLoopTri(o, i)
		}
	}
}
